package store

import (
	"bytes"
	"errors"

	"github.com/mutiny-sim/mutiny/internal/raft"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Errors surfaced by the origin-aware access paths. Both mark the *endpoint*
// as unusable rather than the request as invalid, so failover-aware clients
// retry against another apiserver instead of reporting an application error.
var (
	// ErrReplicaDown reports that the store replica backing the serving
	// apiserver is lost (FaultStoreLoss).
	ErrReplicaDown = errors.New("store: replica down")
	// ErrNoQuorum reports that a write origin cannot reach a majority of
	// replicas (master partition minority side, or too many replicas lost).
	ErrNoQuorum = errors.New("store: no quorum reachable")
)

// Replicated is a multi-replica Backend: each apiserver replica binds to one
// store replica as its read/write/watch origin. An accepted write applies
// synchronously at every replica reachable from its origin — the simulation's
// stand-in for etcd's linearizable write (which commits through consensus
// before acknowledging, so no two gateways can disagree on write order) —
// while replicas unreachable at write time (partition minority) queue the op
// and catch up in commit order on heal. A raft group runs alongside as the
// liveness model: member loss and partitions drive its elections exactly as
// they would etcd's, and its membership/state-transfer machinery backs
// DropReplica/RestoreReplica.
//
// It exists for the §V-C1 ablation and the HA fault axes: injections on the
// apiserver→store channel happen *before* consensus, so all replicas agree on
// the corrupted value and replication provides no protection — while an
// at-rest corruption of a single replica is masked by quorum reads. Both
// behaviours are measured by the ablation benches.
//
// The legacy Backend methods (Get, List, Put, ...) are the origin-0 view and
// keep their historical signatures; HA apiservers use the *From/*Via variants
// that carry their origin and report replica health as errors.
type Replicated struct {
	loop     *sim.Loop
	primary  *Store
	replicas []*Store
	cluster  *raft.Cluster
	// down marks lost replicas (FaultStoreLoss). cut marks severed replica
	// links (FaultMasterPartition); it is queried per-pair, never iterated,
	// so determinism is unaffected.
	down []bool
	cut  map[[2]int]bool
	// missed queues, per replica, the committed ops the replica could not
	// apply while cut off, in global commit order; Heal drains them. Lost
	// replicas do not queue — RestoreReplica is a snapshot state transfer.
	missed [][]repOp
}

type repOp struct {
	Op     int64  `pb:"1"` // 1 = put, 2 = delete
	Key    string `pb:"2"`
	Kind   string `pb:"3"`
	Value  []byte `pb:"4"`
	Origin int64  `pb:"5"` // replica the write was accepted through
}

var _ Backend = (*Replicated)(nil)

// NewReplicated creates n store replicas joined by a raft group. n must be
// at least 1; production control planes use 3.
func NewReplicated(loop *sim.Loop, n int, opts *Options) *Replicated {
	if n < 1 {
		n = 1
	}
	r := &Replicated{
		loop:   loop,
		down:   make([]bool, n),
		cut:    make(map[[2]int]bool),
		missed: make([][]repOp, n),
	}
	for i := 0; i < n; i++ {
		r.replicas = append(r.replicas, New(loop, opts))
	}
	r.primary = r.replicas[0]
	// The raft group carries no data (writes apply synchronously above); it
	// models etcd's consensus liveness — election churn under partition and
	// member loss — and its snapshot transfer backs replica restore.
	r.cluster = raft.NewCluster(loop, n, func(nodeID int, e raft.Entry) {})
	return r
}

// apply commits one accepted op: synchronously at every replica reachable
// from the origin, queued for the rest. The loop executes events one at a
// time, so accepted writes form a single global order that every replica
// applies (live or on catch-up) identically.
// valueOwned reports whether op.Value's backing array is immutable and owned
// by the replication layer (PutVia's once-per-write copy). Without it,
// op.Value may alias a caller's pooled, reused encode buffer, so live
// applies must go through the copying Store.Put and a queued op takes its
// own copy before it outlives the call.
func (r *Replicated) apply(origin int, op repOp, valueOwned bool) {
	for i, rep := range r.replicas {
		if i == origin || r.down[i] {
			continue
		}
		if !r.linkUp(origin, i) {
			if !valueOwned && len(op.Value) > 0 {
				op.Value = append([]byte(nil), op.Value...)
				valueOwned = true
			}
			r.missed[i] = append(r.missed[i], op)
			continue
		}
		switch op.Op {
		case 1:
			if valueOwned {
				_, _ = rep.putOwned(op.Key, spec.Kind(op.Kind), op.Value)
			} else {
				_, _ = rep.Put(op.Key, spec.Kind(op.Kind), op.Value)
			}
		case 2:
			rep.Delete(op.Key)
		}
	}
}

// linkUp reports whether replicas a and b can talk (both directions).
func (r *Replicated) linkUp(a, b int) bool {
	if a == b {
		return true
	}
	return !r.cut[[2]int{a, b}] && !r.cut[[2]int{b, a}]
}

// quorumFrom reports whether origin can reach a majority of live replicas
// (itself included).
func (r *Replicated) quorumFrom(origin int) bool {
	if r.down[origin] {
		return false
	}
	n := 0
	for i := range r.replicas {
		if !r.down[i] && r.linkUp(origin, i) {
			n++
		}
	}
	return n > len(r.replicas)/2
}

// PutVia writes through the given origin replica and replicates the op. The
// write is acknowledged from the origin — by the time any component observes
// it, the (possibly corrupted) value is what consensus will agree on. A lost
// origin or a minority-side origin rejects the write.
func (r *Replicated) PutVia(origin int, key string, kind spec.Kind, value []byte) (int64, error) {
	if r.down[origin] {
		return 0, ErrReplicaDown
	}
	if !r.quorumFrom(origin) {
		return 0, ErrNoQuorum
	}
	// One copy per accepted write, shared by every replica: the caller's
	// bytes typically live in a pooled encode buffer, so the fan-out takes
	// an owned immutable array up front and installs that same array at the
	// origin, at every reachable replica, and in every catch-up queue —
	// instead of one defensive copy per replica.
	var owned []byte
	if len(value) > 0 {
		owned = append([]byte(nil), value...)
	}
	rev, err := r.replicas[origin].putOwned(key, kind, owned)
	if err != nil {
		return 0, err
	}
	r.apply(origin, repOp{Op: 1, Key: key, Kind: string(kind), Value: owned, Origin: int64(origin)}, true)
	return rev, nil
}

// DeleteVia removes through the given origin replica and replicates the
// tombstone.
func (r *Replicated) DeleteVia(origin int, key string) (bool, error) {
	if r.down[origin] {
		return false, ErrReplicaDown
	}
	if !r.quorumFrom(origin) {
		return false, ErrNoQuorum
	}
	ok := r.replicas[origin].Delete(key)
	if ok {
		r.apply(origin, repOp{Op: 2, Key: key, Origin: int64(origin)}, false)
	}
	return ok, nil
}

// GetFrom reads from the given origin replica. A lost replica reports
// ErrReplicaDown instead of serving stale truth.
func (r *Replicated) GetFrom(origin int, key string) (KV, bool, error) {
	if r.down[origin] {
		return KV{}, false, ErrReplicaDown
	}
	kv, ok := r.replicas[origin].Get(key)
	return kv, ok, nil
}

// ListFrom lists from the given origin replica.
func (r *Replicated) ListFrom(origin int, prefix string) ([]KV, error) {
	if r.down[origin] {
		return nil, ErrReplicaDown
	}
	return r.replicas[origin].List(prefix), nil
}

// WatchReplica observes one replica's local apply stream — the watch feed of
// the apiserver bound to it.
func (r *Replicated) WatchReplica(i int, prefix string, fn func(Event)) (cancel func()) {
	return r.replicas[i].Watch(prefix, fn)
}

// OnRewriteAt observes silent byte rewrites on one replica — the apiserver
// bound to it must invalidate its decoded forms.
func (r *Replicated) OnRewriteAt(i int, fn func(key string)) {
	r.replicas[i].OnRewrite(fn)
}

// Put writes via origin 0 (the legacy single-apiserver view).
func (r *Replicated) Put(key string, kind spec.Kind, value []byte) (int64, error) {
	return r.PutVia(0, key, kind, value)
}

// Delete removes via origin 0.
func (r *Replicated) Delete(key string) bool {
	ok, _ := r.DeleteVia(0, key)
	return ok
}

// Get reads from replica 0. A lost replica reads as absent here; the
// origin-aware GetFrom distinguishes "gone" from "not found".
func (r *Replicated) Get(key string) (KV, bool) {
	kv, ok, err := r.GetFrom(0, key)
	if err != nil {
		return KV{}, false
	}
	return kv, ok
}

// List reads from replica 0; empty when the replica is lost.
func (r *Replicated) List(prefix string) []KV {
	kvs, err := r.ListFrom(0, prefix)
	if err != nil {
		return nil
	}
	return kvs
}

// Watch observes replica 0.
func (r *Replicated) Watch(prefix string, fn func(Event)) (cancel func()) {
	return r.WatchReplica(0, prefix, fn)
}

// OnRewrite observes silent byte rewrites on replica 0.
func (r *Replicated) OnRewrite(fn func(key string)) {
	r.OnRewriteAt(0, fn)
}

// Revision returns replica 0's revision.
func (r *Replicated) Revision() int64 { return r.primary.Revision() }

// RevisionAt returns the i-th replica's revision.
func (r *Replicated) RevisionAt(i int) int64 { return r.replicas[i].Revision() }

// MaxRevision returns the highest revision across live replicas — the
// reference point for the stale-read-window metric.
func (r *Replicated) MaxRevision() int64 {
	var max int64
	for i, rep := range r.replicas {
		if !r.down[i] && rep.Revision() > max {
			max = rep.Revision()
		}
	}
	return max
}

// SizeBytes returns replica 0's size.
func (r *Replicated) SizeBytes() int64 { return r.primary.SizeBytes() }

// QuotaExceeded reports whether any live replica refused a write for space —
// replicas see the same op stream, so replica 0 stands for all when up.
func (r *Replicated) QuotaExceeded() bool {
	for i, rep := range r.replicas {
		if !r.down[i] && rep.QuotaExceeded() {
			return true
		}
	}
	return false
}

// Primary exposes the primary replica (at-rest corruption ablation).
func (r *Replicated) Primary() *Store { return r.primary }

// Replica returns the i-th replica.
func (r *Replicated) Replica(i int) *Store { return r.replicas[i] }

// Replicas returns the replica count.
func (r *Replicated) Replicas() int { return len(r.replicas) }

// ReplicaDown reports whether the i-th replica is lost.
func (r *Replicated) ReplicaDown(i int) bool { return r.down[i] }

// DropReplica loses the i-th replica: its raft node crashes and every access
// through it fails until RestoreReplica. The data stays in place (a wiped
// store is restored by state transfer on recovery, not by log replay), and
// any catch-up queue is voided — the state transfer supersedes it.
func (r *Replicated) DropReplica(i int) {
	if r.down[i] {
		return
	}
	r.down[i] = true
	r.missed[i] = nil
	r.cluster.StopNode(i)
}

// RestoreReplica revives a lost replica by state transfer from the
// lowest-indexed live replica (an etcd snapshot install): store contents are
// copied and the raft node fast-forwards past the transferred state, so
// catch-up never double-applies.
func (r *Replicated) RestoreReplica(i int) {
	if !r.down[i] {
		return
	}
	donor := -1
	for j := range r.replicas {
		if j != i && !r.down[j] {
			donor = j
			break
		}
	}
	if donor >= 0 {
		r.replicas[i].restore(r.replicas[donor].snapshot())
		r.cluster.InstallSnapshot(i, donor)
	}
	r.down[i] = false
	r.missed[i] = nil
	r.cluster.RestartNode(i)
}

// Partition severs the links between the two replica groups until Heal. The
// raft transport is cut symmetrically, so a minority-side origin loses write
// quorum while its local reads keep serving (stale) truth.
func (r *Replicated) Partition(groupA, groupB []int) {
	for _, a := range groupA {
		for _, b := range groupB {
			r.cut[[2]int{a, b}] = true
			r.cut[[2]int{b, a}] = true
		}
	}
	r.cluster.Partition(groupA, groupB)
}

// Heal removes all replica-link cuts; replicas that missed writes while cut
// off apply them now, in the order the majority committed them.
func (r *Replicated) Heal() {
	r.cut = make(map[[2]int]bool)
	r.cluster.Heal()
	for i, ops := range r.missed {
		if len(ops) == 0 {
			continue
		}
		r.missed[i] = nil
		for _, op := range ops {
			switch op.Op {
			case 1:
				// Queued ops always own their bytes (PutVia's shared copy, or
				// the defensive copy apply took before queueing).
				_, _ = r.replicas[i].putOwned(op.Key, spec.Kind(op.Kind), op.Value)
			case 2:
				r.replicas[i].Delete(op.Key)
			}
		}
	}
}

// QuorumGet reads key from every live replica and returns the value a
// majority of the full membership agrees on. A single corrupted-at-rest
// replica is outvoted, which is why the paper observes that "quorum reads
// mitigate corrupted values".
func (r *Replicated) QuorumGet(key string) (KV, bool) {
	type vote struct {
		kv    KV
		found bool
		count int
	}
	var votes []vote
	for i, rep := range r.replicas {
		if r.down[i] {
			continue
		}
		kv, ok := rep.Get(key)
		matched := false
		for i := range votes {
			if votes[i].found == ok && (!ok || bytes.Equal(votes[i].kv.Value, kv.Value)) {
				votes[i].count++
				matched = true
				break
			}
		}
		if !matched {
			votes = append(votes, vote{kv: kv, found: ok, count: 1})
		}
	}
	need := len(r.replicas)/2 + 1
	for _, v := range votes {
		if v.count >= need {
			return v.kv, v.found
		}
	}
	// No majority (diverging replicas, or too many lost): fall back to the
	// lowest-indexed live replica.
	for i, rep := range r.replicas {
		if !r.down[i] {
			return rep.Get(key)
		}
	}
	return KV{}, false
}

// Converged reports whether all replicas hold byte-identical values for key.
func (r *Replicated) Converged(key string) bool {
	ref, refOK := r.primary.Get(key)
	for _, rep := range r.replicas[1:] {
		kv, ok := rep.Get(key)
		if ok != refOK || !bytes.Equal(kv.Value, ref.Value) {
			return false
		}
	}
	return true
}
