package store

import (
	"bytes"
	"time"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/raft"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Replicated is a multi-replica Backend: replica 0 serves the API server's
// reads, writes and watches, while a Raft log replicates every operation to
// the other replicas.
//
// It exists for the §V-C1 ablation: injections on the apiserver→store channel
// happen *before* consensus, so all replicas agree on the corrupted value and
// replication provides no protection — while an at-rest corruption of a
// single replica is masked by quorum reads. Both behaviours are measured by
// the ablation benches.
type Replicated struct {
	loop     *sim.Loop
	primary  *Store
	replicas []*Store
	cluster  *raft.Cluster
	pending  [][]byte
	retry    sim.Timer
}

type repOp struct {
	Op    int64  `pb:"1"` // 1 = put, 2 = delete
	Key   string `pb:"2"`
	Kind  string `pb:"3"`
	Value []byte `pb:"4"`
}

var _ Backend = (*Replicated)(nil)

// NewReplicated creates n store replicas joined by a raft group. n must be
// at least 1; production control planes use 3.
func NewReplicated(loop *sim.Loop, n int, opts *Options) *Replicated {
	if n < 1 {
		n = 1
	}
	r := &Replicated{loop: loop}
	for i := 0; i < n; i++ {
		r.replicas = append(r.replicas, New(loop, opts))
	}
	r.primary = r.replicas[0]
	r.cluster = raft.NewCluster(loop, n, func(nodeID int, e raft.Entry) {
		// Replica 0 applied synchronously at write time; followers apply
		// from the committed log.
		if nodeID == 0 {
			return
		}
		var op repOp
		if err := codec.Unmarshal(e.Data, &op); err != nil {
			return // an undecodable log entry cannot be applied
		}
		switch op.Op {
		case 1:
			_, _ = r.replicas[nodeID].Put(op.Key, spec.Kind(op.Kind), op.Value)
		case 2:
			r.replicas[nodeID].Delete(op.Key)
		}
	})
	return r
}

// Put writes to the primary replica and replicates through the raft log. The
// write is acknowledged from the primary — by the time any component
// observes it, the (possibly corrupted) value is what consensus will agree
// on.
func (r *Replicated) Put(key string, kind spec.Kind, value []byte) (int64, error) {
	rev, err := r.primary.Put(key, kind, value)
	if err != nil {
		return 0, err
	}
	r.replicate(repOp{Op: 1, Key: key, Kind: string(kind), Value: value})
	return rev, nil
}

// Delete removes from the primary replica and replicates the tombstone.
func (r *Replicated) Delete(key string) bool {
	ok := r.primary.Delete(key)
	if ok {
		r.replicate(repOp{Op: 2, Key: key})
	}
	return ok
}

// Get reads from the primary replica (etcd serves linearizable reads from
// the leader).
func (r *Replicated) Get(key string) (KV, bool) { return r.primary.Get(key) }

// List reads from the primary replica.
func (r *Replicated) List(prefix string) []KV { return r.primary.List(prefix) }

// Watch observes the primary replica.
func (r *Replicated) Watch(prefix string, fn func(Event)) (cancel func()) {
	return r.primary.Watch(prefix, fn)
}

// OnRewrite observes silent byte rewrites on the primary replica — the one
// the API server reads, and therefore the one whose decoded forms must be
// invalidated. Follower-replica corruption stays invisible until a quorum
// read, exactly as before.
func (r *Replicated) OnRewrite(fn func(key string)) {
	r.primary.OnRewrite(fn)
}

// Revision returns the primary replica's revision.
func (r *Replicated) Revision() int64 { return r.primary.Revision() }

// SizeBytes returns the primary replica's size.
func (r *Replicated) SizeBytes() int64 { return r.primary.SizeBytes() }

// Primary exposes the primary replica (at-rest corruption ablation).
func (r *Replicated) Primary() *Store { return r.primary }

// Replica returns the i-th replica.
func (r *Replicated) Replica(i int) *Store { return r.replicas[i] }

// Replicas returns the replica count.
func (r *Replicated) Replicas() int { return len(r.replicas) }

// QuorumGet reads key from every replica and returns the value a majority
// agrees on. A single corrupted-at-rest replica is outvoted, which is why
// the paper observes that "quorum reads mitigate corrupted values".
func (r *Replicated) QuorumGet(key string) (KV, bool) {
	type vote struct {
		kv    KV
		found bool
		count int
	}
	var votes []vote
	for _, rep := range r.replicas {
		kv, ok := rep.Get(key)
		matched := false
		for i := range votes {
			if votes[i].found == ok && (!ok || bytes.Equal(votes[i].kv.Value, kv.Value)) {
				votes[i].count++
				matched = true
				break
			}
		}
		if !matched {
			votes = append(votes, vote{kv: kv, found: ok, count: 1})
		}
	}
	need := len(r.replicas)/2 + 1
	for _, v := range votes {
		if v.count >= need {
			return v.kv, v.found
		}
	}
	// No majority (possible only with >1 diverging replicas): fall back to
	// the primary.
	return r.primary.Get(key)
}

// Converged reports whether all replicas hold byte-identical values for key.
func (r *Replicated) Converged(key string) bool {
	ref, refOK := r.primary.Get(key)
	for _, rep := range r.replicas[1:] {
		kv, ok := rep.Get(key)
		if ok != refOK || !bytes.Equal(kv.Value, ref.Value) {
			return false
		}
	}
	return true
}

func (r *Replicated) replicate(op repOp) {
	if len(r.replicas) == 1 {
		return
	}
	data, err := codec.Marshal(&op)
	if err != nil {
		return
	}
	r.pending = append(r.pending, data)
	r.flush()
}

func (r *Replicated) flush() {
	for len(r.pending) > 0 {
		if _, err := r.cluster.Propose(r.pending[0]); err != nil {
			// No raft leader yet (e.g. during initial election): retry
			// shortly, like an etcd client would.
			if !r.retry.Pending() {
				r.retry = r.loop.After(50*time.Millisecond, r.flush)
			}
			return
		}
		r.pending = r.pending[1:]
	}
}
