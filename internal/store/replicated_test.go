package store

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

func TestReplicatedConvergence(t *testing.T) {
	loop := sim.NewLoop(1)
	r := NewReplicated(loop, 3, nil)
	if _, err := r.Put("/registry/Pod/default/a", spec.KindPod, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("/registry/Pod/default/b", spec.KindPod, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	r.Delete("/registry/Pod/default/b")
	// Allow the raft election and replication to complete.
	loop.RunUntil(5 * time.Second)
	if !r.Converged("/registry/Pod/default/a") {
		t.Fatal("replicas did not converge on /a")
	}
	if !r.Converged("/registry/Pod/default/b") {
		t.Fatal("replicas did not converge on deleted /b")
	}
	for i := 0; i < r.Replicas(); i++ {
		kv, ok := r.Replica(i).Get("/registry/Pod/default/a")
		if !ok || string(kv.Value) != "v1" {
			t.Fatalf("replica %d: Get(/a) = %q ok=%v", i, kv.Value, ok)
		}
		if _, ok := r.Replica(i).Get("/registry/Pod/default/b"); ok {
			t.Fatalf("replica %d still has deleted /b", i)
		}
	}
}

// The §V-C1 result: a value corrupted before the consensus round is agreed
// on by all replicas — replication offers no protection.
func TestReplicatedAgreesOnCorruptValue(t *testing.T) {
	loop := sim.NewLoop(2)
	r := NewReplicated(loop, 3, nil)
	corrupted := []byte{0xde, 0xad} // stands in for a tampered transaction
	if _, err := r.Put("/registry/Pod/default/a", spec.KindPod, corrupted); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(5 * time.Second)
	for i := 0; i < r.Replicas(); i++ {
		kv, ok := r.Replica(i).Get("/registry/Pod/default/a")
		if !ok || string(kv.Value) != string(corrupted) {
			t.Fatalf("replica %d does not hold the corrupted value", i)
		}
	}
	kv, ok := r.QuorumGet("/registry/Pod/default/a")
	if !ok || string(kv.Value) != string(corrupted) {
		t.Fatal("quorum read did not return the agreed (corrupted) value")
	}
}

// The §V-C1 counterpart: at-rest corruption of one replica is masked by
// quorum reads.
func TestQuorumReadMasksSingleReplicaCorruption(t *testing.T) {
	loop := sim.NewLoop(3)
	r := NewReplicated(loop, 3, nil)
	if _, err := r.Put("/registry/Pod/default/a", spec.KindPod, []byte("good")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(5 * time.Second)
	if !r.Replica(2).CorruptAtRest("/registry/Pod/default/a", func(b []byte) []byte {
		return []byte("bad!")
	}) {
		t.Fatal("CorruptAtRest failed")
	}
	kv, ok := r.QuorumGet("/registry/Pod/default/a")
	if !ok || string(kv.Value) != "good" {
		t.Fatalf("QuorumGet = %q, want the majority value", kv.Value)
	}
	if r.Converged("/registry/Pod/default/a") {
		t.Fatal("Converged = true despite divergent replica")
	}
}

func TestReplicatedSingleNode(t *testing.T) {
	loop := sim.NewLoop(4)
	r := NewReplicated(loop, 1, nil)
	if _, err := r.Put("/k", spec.KindPod, []byte("v")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	kv, ok := r.QuorumGet("/k")
	if !ok || string(kv.Value) != "v" {
		t.Fatal("single-replica quorum read failed")
	}
}

func TestReplicatedWatchServesPrimary(t *testing.T) {
	loop := sim.NewLoop(5)
	r := NewReplicated(loop, 3, nil)
	var events []Event
	r.Watch("/", func(ev Event) { events = append(events, ev) })
	if _, err := r.Put("/k", spec.KindPod, []byte("v")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	if len(events) != 1 || events[0].Type != EventPut {
		t.Fatalf("events = %+v, want one PUT", events)
	}
}
