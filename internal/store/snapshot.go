package store

import (
	"sort"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

// This file implements store snapshot/restore: the storage half of the
// bootstrapped-cluster fork path. A Snapshot is pure immutable data — no
// loop, watcher, or timer references — so one snapshot can seed any number
// of forked clusters concurrently.
//
// Value bytes are shared, not copied: the store's copy-on-write discipline
// (see Put) makes every stored array immutable, so capture and restore alias
// the same arrays across the source cluster, the snapshot, and every fork.
// A fork that overwrites a key installs a fresh array and the shared one is
// simply no longer referenced there — forks never observe each other's
// writes, and snapshot capture/restore is O(items), not O(bytes).

// ItemSnapshot is one stored key with its full revision metadata.
type ItemSnapshot struct {
	Key       string
	Kind      spec.Kind
	Value     []byte
	CreateRev int64
	ModRev    int64
}

// StoreSnapshot captures one replica's contents and counters.
type StoreSnapshot struct {
	Items []ItemSnapshot // sorted by key
	Rev   int64
	Size  int64
}

// Snapshot captures a whole Backend: one StoreSnapshot for a single-replica
// Store, one per replica for a Replicated backend (replicas can diverge
// transiently while the raft log drains, so each is captured independently).
type Snapshot struct {
	Replicas []StoreSnapshot
}

// Clone returns a snapshot whose value bytes live in freshly allocated,
// per-replica contiguous arenas. Content is identical — a restore from the
// clone is byte-equivalent to a restore from the original — but nothing
// aliases the source snapshot's arrays. The campaign engine gives each
// worker its own clone, so parallel forks read worker-local memory instead
// of all hammering the one set of arrays the capture produced.
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	out := &Snapshot{Replicas: make([]StoreSnapshot, len(s.Replicas))}
	for i := range s.Replicas {
		out.Replicas[i] = s.Replicas[i].clone()
	}
	return out
}

func (s StoreSnapshot) clone() StoreSnapshot {
	total := 0
	for i := range s.Items {
		total += len(s.Items[i].Value)
	}
	// One arena per replica: the capacity is exact, so the appends below
	// never reallocate, and the three-index reslice caps each item at its
	// own bytes so a later append through one value can never bleed into
	// the next item's.
	arena := make([]byte, 0, total)
	items := make([]ItemSnapshot, len(s.Items))
	for i, it := range s.Items {
		start := len(arena)
		arena = append(arena, it.Value...)
		it.Value = arena[start:len(arena):len(arena)]
		items[i] = it
	}
	return StoreSnapshot{Items: items, Rev: s.Rev, Size: s.Size}
}

// CaptureSnapshot snapshots any supported Backend.
func CaptureSnapshot(b Backend) *Snapshot {
	switch be := b.(type) {
	case *Store:
		return &Snapshot{Replicas: []StoreSnapshot{be.snapshot()}}
	case *Replicated:
		snap := &Snapshot{}
		for _, rep := range be.replicas {
			snap.Replicas = append(snap.Replicas, rep.snapshot())
		}
		return snap
	default:
		return nil
	}
}

// RestoreSnapshot loads a snapshot into a freshly constructed Backend of the
// same shape (same replica count). It must run before any component writes:
// items are installed directly, without watch notifications, exactly like a
// store process reopening its database file.
func RestoreSnapshot(b Backend, snap *Snapshot) {
	if snap == nil {
		return
	}
	switch be := b.(type) {
	case *Store:
		be.restore(snap.Replicas[0])
	case *Replicated:
		for i, rep := range be.replicas {
			if i < len(snap.Replicas) {
				rep.restore(snap.Replicas[i])
			}
		}
	}
}

func (s *Store) snapshot() StoreSnapshot {
	out := StoreSnapshot{Rev: s.rev, Size: s.size, Items: make([]ItemSnapshot, 0, len(s.items))}
	for key, it := range s.items {
		out.Items = append(out.Items, ItemSnapshot{
			Key:       key,
			Kind:      it.kind,
			Value:     it.value, // immutable; shared with the live store
			CreateRev: it.createRev,
			ModRev:    it.modRev,
		})
	}
	sort.Slice(out.Items, func(i, j int) bool { return out.Items[i].Key < out.Items[j].Key })
	return out
}

func (s *Store) restore(snap StoreSnapshot) {
	s.items = make(map[string]*item, len(snap.Items))
	for _, it := range snap.Items {
		s.items[it.Key] = &item{
			kind:      it.Kind,
			value:     it.Value, // immutable; shared across every fork
			createRev: it.CreateRev,
			modRev:    it.ModRev,
		}
	}
	s.rev = snap.Rev
	s.size = snap.Size
}
