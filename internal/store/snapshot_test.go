package store

import (
	"bytes"
	"testing"
)

// TestSnapshotCloneIsDeepAndEqual: a clone carries byte-equal content in
// freshly allocated arrays — nothing aliases the source (the per-worker
// isolation contract of the campaign engine's WorkerView path).
func TestSnapshotCloneIsDeepAndEqual(t *testing.T) {
	src := &Snapshot{Replicas: []StoreSnapshot{{
		Rev:  42,
		Size: 11,
		Items: []ItemSnapshot{
			{Key: "/registry/pods/a", Kind: "Pod", Value: []byte("alpha"), CreateRev: 1, ModRev: 2},
			{Key: "/registry/pods/b", Kind: "Pod", Value: []byte("bravo!"), CreateRev: 3, ModRev: 4},
			{Key: "/registry/svc/c", Kind: "Service", Value: nil, CreateRev: 5, ModRev: 5},
		},
	}}}

	got := src.Clone()
	if len(got.Replicas) != 1 {
		t.Fatalf("replica count = %d, want 1", len(got.Replicas))
	}
	rs, rg := src.Replicas[0], got.Replicas[0]
	if rg.Rev != rs.Rev || rg.Size != rs.Size || len(rg.Items) != len(rs.Items) {
		t.Fatalf("clone header mismatch: %+v vs %+v", rg, rs)
	}
	for i := range rs.Items {
		is, ig := rs.Items[i], rg.Items[i]
		if ig.Key != is.Key || ig.Kind != is.Kind || ig.CreateRev != is.CreateRev || ig.ModRev != is.ModRev {
			t.Fatalf("item %d metadata mismatch", i)
		}
		if !bytes.Equal(ig.Value, is.Value) {
			t.Fatalf("item %d value mismatch: %q vs %q", i, ig.Value, is.Value)
		}
		if len(is.Value) > 0 && &ig.Value[0] == &is.Value[0] {
			t.Fatalf("item %d value aliases the source array", i)
		}
	}
	// Appending through one cloned value must not bleed into the next item
	// (the arena reslice is capacity-capped).
	v := rg.Items[0].Value
	v = append(v, 'X')
	if bytes.Contains(rg.Items[1].Value, []byte("X")) {
		t.Fatal("append through item 0 overwrote item 1's bytes")
	}

	if (*Snapshot)(nil).Clone() != nil {
		t.Fatal("nil snapshot must clone to nil")
	}
}
