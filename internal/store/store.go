// Package store implements the cluster data store: a revisioned, watchable
// key-value store holding the serialized state of every resource instance.
//
// It mirrors the etcd properties the paper's injection methodology relies on
// (§II-C, §IV-A): all cluster state is confined here, making it the
// dependability bottleneck; values are opaque serialized bytes, so a
// corrupted transaction is stored verbatim and every observer sees the same
// wrong value; and a store that runs out of space stops accepting writes,
// which is the terminal phase of the paper's uncontrolled-replication
// failures ("eventually, the disk of the control plane Node can fill up,
// stalling Etcd").
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// ErrNoSpace is returned by writes once the database exceeds its quota,
// mirroring etcd's NOSPACE alarm.
var ErrNoSpace = errors.New("store: database space exceeded")

// ErrTooLarge is returned for a single value above the per-request limit,
// mirroring etcd's max request size.
var ErrTooLarge = errors.New("store: request too large")

// EventType distinguishes watch events.
type EventType int

// Watch event types.
const (
	EventPut EventType = iota + 1
	EventDelete
)

func (t EventType) String() string {
	switch t {
	case EventPut:
		return "PUT"
	case EventDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event describes one committed change.
type Event struct {
	Type     EventType
	Key      string
	Kind     spec.Kind
	Value    []byte // serialized object; nil for deletes
	Revision int64
}

// KV is a key with its stored bytes.
type KV struct {
	Key      string
	Kind     spec.Kind
	Value    []byte
	Revision int64
}

// Backend is the storage interface the API server programs against; it is
// satisfied by Store and by raft-replicated wrappers.
type Backend interface {
	Put(key string, kind spec.Kind, value []byte) (int64, error)
	Get(key string) (KV, bool)
	Delete(key string) bool
	List(prefix string) []KV
	Watch(prefix string, fn func(Event)) (cancel func())
	Revision() int64
	SizeBytes() int64
}

// Options configure a Store.
type Options struct {
	// QuotaBytes bounds the database size; writes fail with ErrNoSpace past
	// it. Zero means the scaled default (512 KB, standing in for etcd's
	// quota in the same ratio as the rest of the simulated capacities).
	QuotaBytes int64
	// MaxValueBytes bounds one value. Zero means 64 KB.
	MaxValueBytes int64
	// WatchLatency is the delay before watch events reach watchers.
	// Zero means 1 ms.
	WatchLatency time.Duration
}

func (o *Options) withDefaults() Options {
	out := Options{QuotaBytes: 512 << 10, MaxValueBytes: 64 << 10, WatchLatency: time.Millisecond}
	if o == nil {
		return out
	}
	if o.QuotaBytes > 0 {
		out.QuotaBytes = o.QuotaBytes
	}
	if o.MaxValueBytes > 0 {
		out.MaxValueBytes = o.MaxValueBytes
	}
	if o.WatchLatency > 0 {
		out.WatchLatency = o.WatchLatency
	}
	return out
}

// Store is a single-replica data store. All methods must be called from the
// simulation loop; watch callbacks are delivered asynchronously on the loop.
type Store struct {
	loop  *sim.Loop
	opts  Options
	items map[string]*item
	rev   int64
	size  int64
	// watchers is kept in registration order so notify schedules deliveries
	// deterministically (map iteration would randomize the order of
	// same-tick events between runs). Cancellation marks and sweeps lazily
	// (like the API server's fan-out list): pending deliveries snapshot the
	// list length at notify time, so it must not be compacted under them.
	watchers          []*watcher
	cancelledWatchers int

	// Batched delivery: notify queues one pendingEvent and schedules
	// deliverFn (built once) after the watch latency; the fired event hands
	// the queue's front entry to every watcher registered at notify time.
	// Same commit order, same per-watcher order as the former
	// one-closure-per-(event, watcher) scheduling, without the closure.
	// This mirrors the apiserver's fan-out machinery (Server.pending /
	// fanout / sweepWatchers) — the snapshot-by-length and sweep-deferral
	// invariants are shared; a fix to one almost certainly applies to the
	// other.
	pendingEv   []pendingEvent
	pendingHead int
	delivering  int
	deliverFn   func()
	// rewriteHooks observe silent byte rewrites — mutations of stored values
	// that do NOT bump the revision or notify watchers (CorruptAtRest). The
	// API server's revision-tagged decoded-object cache registers here: a
	// revision tag alone cannot see a same-revision byte change, so every
	// such rewrite must explicitly invalidate the decoded form.
	rewriteHooks []func(key string)
}

type item struct {
	kind      spec.Kind
	value     []byte
	createRev int64
	modRev    int64
}

type watcher struct {
	prefix    string
	fn        func(Event)
	cancelled bool
}

// pendingEvent is one committed change awaiting delivery: the event plus the
// watcher-list length at notify time, so watchers registered between commit
// and delivery do not receive it.
type pendingEvent struct {
	ev Event
	n  int
}

var _ Backend = (*Store)(nil)

// New returns an empty store bound to the simulation loop.
func New(loop *sim.Loop, opts *Options) *Store {
	s := &Store{
		loop:  loop,
		opts:  opts.withDefaults(),
		items: make(map[string]*item),
	}
	s.deliverFn = s.deliver
	return s
}

// Revision returns the latest committed revision.
func (s *Store) Revision() int64 { return s.rev }

// SizeBytes returns the current database size.
func (s *Store) SizeBytes() int64 { return s.size }

// QuotaExceeded reports whether the store is refusing writes.
func (s *Store) QuotaExceeded() bool { return s.size > s.opts.QuotaBytes }

// Put stores value under key and notifies watchers. The value is stored
// verbatim: corruption introduced upstream is preserved and observed by
// every component, exactly like a faulty transaction committed to etcd.
//
// Copy-on-write discipline: Put copies the caller's bytes exactly once into a
// fresh backing array (callers commonly pass pooled encode buffers), and that
// array becomes *immutable* — the watch event, every Get/List, and snapshot
// capture all share it by reference. Overwrites install a new array instead
// of scribbling over the old one, so readers holding the previous revision
// keep a consistent view.
func (s *Store) Put(key string, kind spec.Kind, value []byte) (int64, error) {
	if int64(len(value)) > s.opts.MaxValueBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(value))
	}
	if s.QuotaExceeded() {
		return 0, ErrNoSpace
	}
	return s.install(key, kind, append([]byte(nil), value...)), nil
}

// putOwned is Put minus the defensive copy, for callers that guarantee the
// backing array of value is immutable and never reused — the replication
// fan-out copies an accepted op's payload exactly once and installs that one
// array at every replica (and in every catch-up queue). Callers passing
// pooled or otherwise reused buffers must use Put.
func (s *Store) putOwned(key string, kind spec.Kind, value []byte) (int64, error) {
	if int64(len(value)) > s.opts.MaxValueBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(value))
	}
	if s.QuotaExceeded() {
		return 0, ErrNoSpace
	}
	return s.install(key, kind, value), nil
}

// install commits stored (already owned by the store) under key and notifies
// watchers.
func (s *Store) install(key string, kind spec.Kind, stored []byte) int64 {
	s.rev++
	it, exists := s.items[key]
	if exists {
		s.size -= int64(len(it.value))
		it.value = stored
		it.modRev = s.rev
		it.kind = kind
	} else {
		s.items[key] = &item{
			kind:      kind,
			value:     stored,
			createRev: s.rev,
			modRev:    s.rev,
		}
		s.size += int64(len(key))
	}
	s.size += int64(len(stored))
	s.notify(Event{Type: EventPut, Key: key, Kind: kind, Value: stored, Revision: s.rev})
	return s.rev
}

// Get returns the stored bytes for key. The value is a sealed reference to
// the immutable stored array — callers must not mutate it (CorruptAtRest is
// the one sanctioned mutation path, and it replaces the array).
func (s *Store) Get(key string) (KV, bool) {
	it, ok := s.items[key]
	if !ok {
		return KV{}, false
	}
	return KV{Key: key, Kind: it.kind, Value: it.value, Revision: it.modRev}, true
}

// Delete removes key, notifying watchers. Deletes succeed even past quota so
// that the system can always shed state.
func (s *Store) Delete(key string) bool {
	it, ok := s.items[key]
	if !ok {
		return false
	}
	s.rev++
	s.size -= int64(len(it.value)) + int64(len(key))
	delete(s.items, key)
	s.notify(Event{Type: EventDelete, Key: key, Kind: it.kind, Revision: s.rev})
	return true
}

// List returns all entries under prefix in key order. Values are sealed
// references under the same read-only contract as Get.
func (s *Store) List(prefix string) []KV {
	var out []KV
	for key, it := range s.items {
		if strings.HasPrefix(key, prefix) {
			out = append(out, KV{Key: key, Kind: it.kind, Value: it.value, Revision: it.modRev})
		}
	}
	sortKVs(out)
	return out
}

// Count returns the number of keys under prefix.
func (s *Store) Count(prefix string) int {
	n := 0
	for key := range s.items {
		if strings.HasPrefix(key, prefix) {
			n++
		}
	}
	return n
}

// Watch registers fn for changes to keys under prefix. Events are delivered
// asynchronously on the simulation loop in commit order.
func (s *Store) Watch(prefix string, fn func(Event)) (cancel func()) {
	w := &watcher{prefix: prefix, fn: fn}
	s.watchers = append(s.watchers, w)
	return func() {
		if w.cancelled {
			return
		}
		w.cancelled = true
		s.cancelledWatchers++
		s.sweepWatchers()
	}
}

// sweepWatchers compacts cancelled watchers out of the registration list —
// only while no deliveries are pending or in flight, because pending entries
// index the list by its notify-time length.
func (s *Store) sweepWatchers() {
	if s.cancelledWatchers == 0 || len(s.pendingEv) != 0 || s.delivering != 0 {
		return
	}
	live := s.watchers[:0]
	for _, w := range s.watchers {
		if !w.cancelled {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(s.watchers); i++ {
		s.watchers[i] = nil
	}
	s.watchers = live
	s.cancelledWatchers = 0
}

// CorruptAtRest silently corrupts the stored bytes of key without bumping the
// revision or notifying watchers (the §V-C1 ablation: such corruption hides
// behind the API server's watch cache until a refresh happens). The mutate
// callback receives a private copy and the result becomes a new backing
// array, honoring the copy-on-write discipline — readers and snapshots that
// alias the old array keep the uncorrupted bytes, exactly like a disk-level
// flip that postdates a backup.
func (s *Store) CorruptAtRest(key string, mutate func([]byte) []byte) bool {
	it, ok := s.items[key]
	if !ok {
		return false
	}
	s.size -= int64(len(it.value))
	it.value = mutate(append([]byte(nil), it.value...))
	s.size += int64(len(it.value))
	// The bytes changed under an unchanged revision: anyone holding a
	// revision-tagged decoded form of this key must drop it, or the
	// corruption would stay invisible even past a cache rebuild.
	for _, fn := range s.rewriteHooks {
		fn(key)
	}
	return true
}

// OnRewrite registers fn to be called with the key of every silent byte
// rewrite (a value mutation that keeps its revision, i.e. CorruptAtRest).
// Ordinary writes are observable through Watch and revision tags; this hook
// exists solely so decoded-object caches keyed on revision stay honest in
// the face of at-rest corruption.
func (s *Store) OnRewrite(fn func(key string)) {
	s.rewriteHooks = append(s.rewriteHooks, fn)
}

// Keys returns all keys in order (diagnostics).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.items))
	for k := range s.items {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func (s *Store) notify(ev Event) {
	if len(s.watchers) == 0 {
		return
	}
	s.pendingEv = append(s.pendingEv, pendingEvent{ev: ev, n: len(s.watchers)})
	s.loop.After(s.opts.WatchLatency, s.deliverFn)
}

// deliver hands the front pending event to every watcher registered at
// notify time, in registration order — the same delivery order as scheduling
// one closure per (event, watcher), at one loop event and zero closures per
// commit.
func (s *Store) deliver() {
	pe := s.pendingEv[s.pendingHead]
	s.pendingEv[s.pendingHead] = pendingEvent{}
	s.pendingHead++
	if s.pendingHead == len(s.pendingEv) {
		s.pendingEv = s.pendingEv[:0]
		s.pendingHead = 0
	}
	s.delivering++
	for _, w := range s.watchers[:pe.n] {
		if !w.cancelled && strings.HasPrefix(pe.ev.Key, w.prefix) {
			w.fn(pe.ev)
		}
	}
	s.delivering--
	s.sweepWatchers()
}

func sortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

func sortStrings(ss []string) { sort.Strings(ss) }
