package store

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

func newTestStore(t *testing.T) (*sim.Loop, *Store) {
	t.Helper()
	loop := sim.NewLoop(1)
	return loop, New(loop, nil)
}

func TestPutGetDelete(t *testing.T) {
	_, s := newTestStore(t)
	rev, err := s.Put("/registry/Pod/default/a", spec.KindPod, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if rev != 1 {
		t.Fatalf("rev = %d, want 1", rev)
	}
	kv, ok := s.Get("/registry/Pod/default/a")
	if !ok || string(kv.Value) != "v1" || kv.Kind != spec.KindPod {
		t.Fatalf("Get = %+v ok=%v", kv, ok)
	}
	if !s.Delete("/registry/Pod/default/a") {
		t.Fatal("Delete = false")
	}
	if _, ok := s.Get("/registry/Pod/default/a"); ok {
		t.Fatal("Get after delete = ok")
	}
	if s.Delete("/registry/Pod/default/a") {
		t.Fatal("second Delete = true")
	}
}

func TestRevisionMonotone(t *testing.T) {
	_, s := newTestStore(t)
	var last int64
	for i := 0; i < 10; i++ {
		rev, err := s.Put("/k", spec.KindPod, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if rev <= last {
			t.Fatalf("revision not monotone: %d after %d", rev, last)
		}
		last = rev
	}
	s.Delete("/k")
	if s.Revision() <= last {
		t.Fatal("delete did not advance revision")
	}
}

func TestListPrefix(t *testing.T) {
	_, s := newTestStore(t)
	keys := []string{
		"/registry/Pod/default/b",
		"/registry/Pod/default/a",
		"/registry/Pod/kube-system/c",
		"/registry/Node//n1",
	}
	for _, k := range keys {
		if _, err := s.Put(k, spec.KindPod, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List("/registry/Pod/default/")
	if len(got) != 2 {
		t.Fatalf("List = %d entries, want 2", len(got))
	}
	if got[0].Key != "/registry/Pod/default/a" || got[1].Key != "/registry/Pod/default/b" {
		t.Fatalf("List order wrong: %v, %v", got[0].Key, got[1].Key)
	}
	if n := s.Count("/registry/Pod/"); n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}
}

func TestWatchDeliveryAndOrdering(t *testing.T) {
	loop, s := newTestStore(t)
	var events []Event
	s.Watch("/registry/Pod/", func(ev Event) { events = append(events, ev) })
	if _, err := s.Put("/registry/Pod/default/a", spec.KindPod, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("/registry/Pod/default/a", spec.KindPod, []byte("2")); err != nil {
		t.Fatal(err)
	}
	s.Delete("/registry/Pod/default/a")
	if _, err := s.Put("/registry/Node//n", spec.KindNode, []byte("n")); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatal("watch delivered synchronously; must be async")
	}
	loop.RunUntil(time.Second)
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (node event must be filtered)", len(events))
	}
	if events[0].Type != EventPut || string(events[0].Value) != "1" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Type != EventPut || string(events[1].Value) != "2" {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if events[2].Type != EventDelete {
		t.Fatalf("event 2 = %+v", events[2])
	}
	if !(events[0].Revision < events[1].Revision && events[1].Revision < events[2].Revision) {
		t.Fatal("events out of revision order")
	}
}

func TestWatchCancel(t *testing.T) {
	loop, s := newTestStore(t)
	var n int
	cancel := s.Watch("/", func(Event) { n++ })
	if _, err := s.Put("/a", spec.KindPod, []byte("1")); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := s.Put("/b", spec.KindPod, []byte("2")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	if n != 0 {
		t.Fatalf("cancelled watcher received %d events (cancel must also drop in-flight)", n)
	}
}

func TestQuotaStallsWrites(t *testing.T) {
	loop := sim.NewLoop(1)
	s := New(loop, &Options{QuotaBytes: 100})
	if _, err := s.Put("/a", spec.KindPod, make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("/b", spec.KindPod, make([]byte, 90)); err != nil {
		t.Fatal(err) // this write crosses the quota but was admitted below it
	}
	if !s.QuotaExceeded() {
		t.Fatal("QuotaExceeded = false")
	}
	if _, err := s.Put("/c", spec.KindPod, []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Put past quota err = %v, want ErrNoSpace", err)
	}
	// Deletes still work, and free enough space to resume writes.
	if !s.Delete("/a") || !s.Delete("/b") {
		t.Fatal("Delete failed under quota pressure")
	}
	if _, err := s.Put("/c", spec.KindPod, []byte("x")); err != nil {
		t.Fatalf("Put after freeing err = %v", err)
	}
}

func TestMaxValueSize(t *testing.T) {
	loop := sim.NewLoop(1)
	s := New(loop, &Options{MaxValueBytes: 10})
	if _, err := s.Put("/a", spec.KindPod, make([]byte, 11)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestCorruptAtRestIsSilent(t *testing.T) {
	loop, s := newTestStore(t)
	var n int
	s.Watch("/", func(Event) { n++ })
	if _, err := s.Put("/a", spec.KindPod, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	rev := s.Revision()
	if !s.CorruptAtRest("/a", func(b []byte) []byte { b[0] ^= 0xff; return b }) {
		t.Fatal("CorruptAtRest = false")
	}
	loop.RunUntil(2 * time.Second)
	if s.Revision() != rev {
		t.Fatal("at-rest corruption bumped the revision")
	}
	if n != 1 {
		t.Fatalf("at-rest corruption notified watchers (n=%d)", n)
	}
	kv, _ := s.Get("/a")
	if kv.Value[0] != 0xff {
		t.Fatal("at-rest corruption not visible on read")
	}
	if s.CorruptAtRest("/missing", func(b []byte) []byte { return b }) {
		t.Fatal("CorruptAtRest on missing key = true")
	}
}

// TestValueImmutability covers the copy-on-write contract that replaced the
// old copy-per-read behavior: Put severs the caller's buffer, overwrites
// install a fresh array (readers of the old revision keep the old bytes), and
// CorruptAtRest never touches an array readers may hold.
func TestValueImmutability(t *testing.T) {
	_, s := newTestStore(t)
	buf := []byte{1, 2, 3}
	if _, err := s.Put("/a", spec.KindPod, buf); err != nil {
		t.Fatal(err)
	}
	// The caller's (possibly pooled) buffer must not alias the stored value.
	buf[0] = 99
	kv, _ := s.Get("/a")
	if kv.Value[0] != 1 {
		t.Fatal("Put retained the caller's buffer")
	}
	// Overwrites replace the backing array: a reader holding the previous
	// revision keeps a consistent view.
	old := kv.Value
	if _, err := s.Put("/a", spec.KindPod, []byte{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if old[0] != 1 {
		t.Fatal("overwrite scribbled over the previous revision's array")
	}
	cur, _ := s.Get("/a")
	if cur.Value[0] != 7 {
		t.Fatal("overwrite not visible")
	}
	// CorruptAtRest replaces, never mutates in place.
	held, _ := s.Get("/a")
	s.CorruptAtRest("/a", func(b []byte) []byte { b[0] = 0xff; return b })
	if held.Value[0] != 7 {
		t.Fatal("CorruptAtRest mutated an array a reader held")
	}
	after, _ := s.Get("/a")
	if after.Value[0] != 0xff {
		t.Fatal("CorruptAtRest not visible on a fresh read")
	}
}

func TestSizeAccounting(t *testing.T) {
	_, s := newTestStore(t)
	if s.SizeBytes() != 0 {
		t.Fatal("empty store has nonzero size")
	}
	if _, err := s.Put("/ab", spec.KindPod, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	want := int64(len("/ab") + 10)
	if s.SizeBytes() != want {
		t.Fatalf("size = %d, want %d", s.SizeBytes(), want)
	}
	if _, err := s.Put("/ab", spec.KindPod, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	want = int64(len("/ab") + 4)
	if s.SizeBytes() != want {
		t.Fatalf("size after overwrite = %d, want %d", s.SizeBytes(), want)
	}
	s.Delete("/ab")
	if s.SizeBytes() != 0 {
		t.Fatalf("size after delete = %d, want 0", s.SizeBytes())
	}
}

// Property: under any sequence of puts and deletes, the store's size
// accounting matches the sum of live keys and values exactly, and revisions
// strictly increase.
func TestPropertySizeAccounting(t *testing.T) {
	type op struct {
		Key    uint8
		Del    bool
		ValLen uint8
	}
	prop := func(ops []op) bool {
		loop := sim.NewLoop(1)
		s := New(loop, &Options{QuotaBytes: 1 << 30})
		live := make(map[string]int)
		var lastRev int64
		for _, o := range ops {
			key := "/k/" + string(rune('a'+o.Key%16))
			if o.Del {
				deleted := s.Delete(key)
				if deleted != (live[key] > 0 || hasKey(live, key)) {
					return false
				}
				delete(live, key)
			} else {
				val := make([]byte, int(o.ValLen))
				rev, err := s.Put(key, spec.KindPod, val)
				if err != nil {
					return false
				}
				if rev <= lastRev {
					return false
				}
				lastRev = rev
				live[key] = len(val)
			}
		}
		var want int64
		for k, v := range live {
			want += int64(len(k)) + int64(v)
		}
		return s.SizeBytes() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func hasKey(m map[string]int, k string) bool {
	_, ok := m[k]
	return ok
}

// OnRewrite hooks fire for silent byte rewrites (CorruptAtRest) only —
// ordinary writes and deletes are observable through revisions and watches
// and must not trigger them.
func TestOnRewriteHookFiresOnlyForCorruptAtRest(t *testing.T) {
	loop := sim.NewLoop(1)
	s := New(loop, nil)
	var rewritten []string
	s.OnRewrite(func(key string) { rewritten = append(rewritten, key) })

	if _, err := s.Put("/a", spec.KindPod, []byte("value")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("/a", spec.KindPod, []byte("value2")); err != nil {
		t.Fatal(err)
	}
	if len(rewritten) != 0 {
		t.Fatalf("Put fired the rewrite hook: %v", rewritten)
	}
	if !s.CorruptAtRest("/a", func(b []byte) []byte { b[0] ^= 0xff; return b }) {
		t.Fatal("CorruptAtRest = false")
	}
	if len(rewritten) != 1 || rewritten[0] != "/a" {
		t.Fatalf("rewrite hook observed %v, want [/a]", rewritten)
	}
	s.Delete("/a")
	if len(rewritten) != 1 {
		t.Fatalf("Delete fired the rewrite hook: %v", rewritten)
	}
	if s.CorruptAtRest("/missing", func(b []byte) []byte { return b }) {
		t.Fatal("CorruptAtRest on missing key = true")
	}
	if len(rewritten) != 1 {
		t.Fatal("rewrite hook fired for a missing key")
	}
}

// The replicated backend routes rewrite notifications from the primary —
// the replica the API server reads — and not from followers.
func TestReplicatedOnRewriteObservesPrimaryOnly(t *testing.T) {
	loop := sim.NewLoop(1)
	r := NewReplicated(loop, 3, nil)
	var rewritten []string
	r.OnRewrite(func(key string) { rewritten = append(rewritten, key) })
	if _, err := r.Put("/registry/Pod/default/a", spec.KindPod, []byte("v")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 5*time.Second) // let raft replicate
	r.Replica(2).CorruptAtRest("/registry/Pod/default/a", func(b []byte) []byte { b[0] ^= 1; return b })
	if len(rewritten) != 0 {
		t.Fatalf("follower corruption notified the primary's hook: %v", rewritten)
	}
	r.Primary().CorruptAtRest("/registry/Pod/default/a", func(b []byte) []byte { b[0] ^= 1; return b })
	if len(rewritten) != 1 {
		t.Fatalf("primary corruption observed %d times, want 1", len(rewritten))
	}
}
