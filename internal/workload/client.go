package workload

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Client parameters from §V-A: 20 requests/second for 30 seconds.
const (
	RequestRate     = 20
	ClientDuration  = 30 * time.Second
	requestInterval = time.Second / RequestRate
	// TotalRequests is the length of every latency time series.
	TotalRequests = int(ClientDuration / requestInterval)
)

// RequestRecord is one client request outcome. Failed requests carry a zero
// latency ("we padded with 0 the response times of failed requests").
type RequestRecord struct {
	At        time.Duration
	LatencyMS float64
	Err       string // netsim error kind, "" on success
}

// Client is the application client (AC): it resolves the target service's
// VIP and issues requests from the monitoring node, recording the response
// time series the client-failure classification is built on.
//
// The VIP is resolved from a watch-maintained service view (the same
// informer-style pipeline the driver's readiness checks use) instead of a
// per-request server Get; each request still notes an access of the service
// key so the injection framework's activation accounting keeps per-request
// granularity.
type Client struct {
	cl      *cluster.Cluster
	api     *apiserver.Client
	ns      string
	service string
	// view mirrors the target service; nsKey is the precomputed view key and
	// svcKey the precomputed store key the per-request access note reports.
	view   *apiserver.Reflector
	nsKey  string
	svcKey string

	Records []RequestRecord
	ticker  sim.Timer
	sent    int
}

// NewClient builds an application client for one service.
func NewClient(cl *cluster.Cluster, namespace, service string) *Client {
	return &Client{
		cl:      cl,
		api:     cl.Client("appclient"),
		ns:      namespace,
		service: service,
		nsKey:   namespace + "/" + service,
		svcKey:  spec.Key(spec.KindService, namespace, service),
		Records: make([]RequestRecord, 0, TotalRequests),
	}
}

// Start begins issuing requests on the simulation loop; it stops by itself
// after TotalRequests.
func (c *Client) Start() {
	c.view = apiserver.NewReflector(c.cl.Loop, c.api, readinessResync, nil, spec.KindService)
	c.view.Start()
	c.ticker = c.cl.Loop.Every(requestInterval, c.issue)
}

// Stop cancels the client early.
func (c *Client) Stop() {
	c.ticker.Stop()
	if c.view != nil {
		c.view.Stop()
	}
}

// Done reports whether the full request series was issued.
func (c *Client) Done() bool { return c.sent >= TotalRequests }

func (c *Client) issue() {
	if c.sent >= TotalRequests {
		c.Stop()
		return
	}
	c.sent++
	rec := RequestRecord{At: c.cl.Loop.Now()}
	res := c.request()
	if res.Failed() {
		rec.Err = res.Err
	} else {
		rec.LatencyMS = float64(res.Latency) / float64(time.Millisecond)
	}
	c.Records = append(c.Records, rec)
}

func (c *Client) request() netsim.RequestResult {
	// The VIP comes from the watch-maintained view: a local lookup over the
	// sealed service object, no server round-trip per request. NoteAccess
	// preserves the activation accounting a per-request Get used to provide.
	obj, ok := c.view.GetByKey(spec.KindService, c.nsKey)
	if !ok {
		return netsim.RequestResult{Err: netsim.ErrRefused}
	}
	c.api.NoteAccess(c.svcKey)
	vip := obj.(*spec.Service).Spec.ClusterIP
	if vip == "" {
		return netsim.RequestResult{Err: netsim.ErrRefused}
	}
	return c.cl.Net.Request(c.cl.MonitoringNode(), vip, appPort)
}

// Series returns the latency series padded with zeros to TotalRequests.
func (c *Client) Series() []float64 {
	out := make([]float64, TotalRequests)
	for i := range c.Records {
		if i < TotalRequests {
			out[i] = c.Records[i].LatencyMS
		}
	}
	return out
}

// ErrorCounts aggregates failures by kind.
func (c *Client) ErrorCounts() map[string]int {
	out := make(map[string]int)
	for _, r := range c.Records {
		if r.Err != "" {
			out[r.Err]++
		}
	}
	return out
}

// TrailingFailures counts consecutive failed requests at the end of the
// series — the service-unreachable signal.
func (c *Client) TrailingFailures() int {
	n := 0
	for i := len(c.Records) - 1; i >= 0; i-- {
		if c.Records[i].Err == "" {
			break
		}
		n++
	}
	return n
}
