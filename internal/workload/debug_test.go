package workload

import (
	"fmt"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

func TestDebugEvict(t *testing.T) {
	c := bootCluster(t, 3)
	d := NewDriver(c, Failover)
	d.Setup()
	d.Run()
	fmt.Println("run done at", c.Loop.Now())
	for _, no := range c.Client("t").List(spec.KindNode, "") {
		n := no.(*spec.Node)
		fmt.Println("node", n.Metadata.Name, n.Spec.Taints, "ready:", n.Status.Ready)
	}
	for _, po := range c.Client("t").List(spec.KindPod, spec.DefaultNamespace) {
		p := po.(*spec.Pod)
		fmt.Println("pod", p.Metadata.Name, p.Spec.NodeName, p.Status.Phase, "ready:", p.Status.Ready, "active:", p.Active())
	}
}
