// Package workload implements the orchestration workloads and the
// application client of the paper's experimental method (§IV-B): a kbench-
// like driver performing deploy / scale-up / failover operations on a
// service application, and a client measuring its availability and response
// times from the monitoring node.
package workload

import (
	"errors"
	"fmt"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Kind names an orchestration workload.
type Kind string

// The three workloads of §IV-B.
const (
	Deploy   Kind = "deploy"
	ScaleUp  Kind = "scale"
	Failover Kind = "failover"
)

// Policy is the governance-operator workload of the admission campaign: a
// steady mix of compliant churn (deployment scaling the admission chain must
// keep admitting) and policy-violating canary creates (which a healthy chain
// denies). It rides alongside the paper's three — deliberately NOT in
// Kinds(), so message-channel campaigns and their goldens are untouched.
const Policy Kind = "policy"

// Kinds lists the workloads in paper order.
func Kinds() []Kind { return []Kind{Deploy, ScaleUp, Failover} }

// UserIdentity is the cluster-user identity driving workloads; its API
// errors feed the Figure 7 analysis.
const UserIdentity = "kbench"

// Parameters from §V-A.
const (
	deployDeployments = 3
	deployReplicas    = 2
	scaleDeployments  = 2
	scaleSteps        = 3 // 2→3→4→5
	scaleStepDelay    = 10 * time.Second
	failoverDeploys   = 3
	requestTimeout    = 40 * time.Second // kbench wait bound
	failoverTaintKey  = "kbench-failover"
	appPort           = 80
	appTargetPort     = 8080
	// readinessResync is the low-frequency safety-net re-list of the
	// watch-driven readiness views: lost watch notifications (crashes,
	// injected watch-channel drops) surface at most one resync later
	// instead of stalling the driver until the kbench bound.
	readinessResync = 5 * time.Second
	// The policy workload: policyRounds rounds, policyRoundDelay apart, each
	// issuing one violating canary create plus compliant scaling churn. The
	// cadence spans the 45 s measurement window, so webhook faults firing and
	// healing anywhere inside it are straddled by both kinds of write.
	policyDeployments = 2
	policyRounds      = 14
	policyRoundDelay  = 3 * time.Second
)

// AppName returns the name of the i-th service application deployment.
func AppName(i int) string { return fmt.Sprintf("webapp-%d", i) }

// AppDeployment builds the paper's service application: a stateless web
// server that reads a random seed from a volume at startup, with CPU and
// memory requests and limits and default priority.
func AppDeployment(name string, replicas int64) *spec.Deployment {
	return &spec.Deployment{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{spec.LabelApp: name},
		},
		Spec: spec.DeploymentSpec{
			Replicas: replicas,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{spec.LabelApp: name}},
			Template: spec.PodTemplate{
				Labels: map[string]string{spec.LabelApp: name},
				Spec: spec.PodSpec{
					Containers: []spec.Container{{
						Name: "webserver", Image: "registry.local/webapp:1.0",
						Command:          []string{"serve"},
						RequestsMilliCPU: 250, RequestsMemMB: 128,
						LimitsMilliCPU: 500, LimitsMemMB: 256,
						Port: appTargetPort,
					}},
					VolumeSeed: "seed-0451",
				},
			},
			MaxSurge: 1,
		},
	}
}

// AppService builds the Service exposing one application deployment.
func AppService(name string) *spec.Service {
	return &spec.Service{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{spec.LabelApp: name},
		},
		Spec: spec.ServiceSpec{
			Selector: map[string]string{spec.LabelApp: name},
			Ports:    []spec.ServicePort{{Port: appPort, TargetPort: appTargetPort, Protocol: "TCP"}},
		},
	}
}

// Driver executes one workload against a cluster as the kbench user.
type Driver struct {
	Cluster *cluster.Cluster
	User    *apiserver.Client
	Kind    Kind
}

// NewDriver builds a driver for the given workload.
func NewDriver(c *cluster.Cluster, kind Kind) *Driver {
	return &Driver{Cluster: c, User: c.Client(UserIdentity), Kind: kind}
}

// Setup creates the resource instances the workload requires before the
// injection (§IV-C "the scenario setup creates all the resource instances
// that are required by the orchestration workloads before the injection"),
// then waits for them to settle.
func (d *Driver) Setup() {
	switch d.Kind {
	case Deploy:
		// The deploy workload creates everything itself.
	case ScaleUp:
		for i := 0; i < scaleDeployments; i++ {
			_ = d.User.Create(AppDeployment(AppName(i), deployReplicas))
			_ = d.User.Create(AppService(AppName(i)))
		}
		d.awaitReady(scaleDeployments, deployReplicas)
	case Failover:
		for i := 0; i < failoverDeploys; i++ {
			_ = d.User.Create(AppDeployment(AppName(i), deployReplicas))
			_ = d.User.Create(AppService(AppName(i)))
		}
		d.awaitReady(failoverDeploys, deployReplicas)
	case Policy:
		for i := 0; i < policyDeployments; i++ {
			_ = d.User.Create(AppDeployment(AppName(i), deployReplicas))
			_ = d.User.Create(AppService(AppName(i)))
		}
		d.awaitReady(policyDeployments, deployReplicas)
	}
}

// Run performs the workload operations. It drives the simulation loop and
// returns when the operations completed or the kbench wait bound expired.
func (d *Driver) Run() {
	switch d.Kind {
	case Deploy:
		for i := 0; i < deployDeployments; i++ {
			_ = d.User.Create(AppDeployment(AppName(i), deployReplicas))
			_ = d.User.Create(AppService(AppName(i)))
		}
		d.awaitReady(deployDeployments, deployReplicas)
	case ScaleUp:
		for step := 0; step < scaleSteps; step++ {
			target := int64(deployReplicas + step + 1)
			for i := 0; i < scaleDeployments; i++ {
				d.scaleTo(AppName(i), target)
			}
			if step < scaleSteps-1 {
				d.Cluster.Loop.RunUntil(d.Cluster.Loop.Now() + scaleStepDelay)
			}
		}
		d.awaitReady(scaleDeployments, deployReplicas+scaleSteps)
	case Failover:
		victim := d.taintBusiestNode()
		d.awaitFailover(victim)
	case Policy:
		d.runPolicy()
	}
}

// runPolicy drives the governance mix: each round creates one policy-violating
// canary pod (passes the apiserver's structural validation; only the admission
// chain can deny it) and scales the compliant deployments, then sleeps to the
// next round. No readiness wait at the end — the workload's outcome is read
// off the admission counters and the availability window, not a rollout.
func (d *Driver) runPolicy() {
	for round := 0; round < policyRounds; round++ {
		_ = d.User.Create(canaryPod(round))
		target := int64(deployReplicas + round%2)
		for i := 0; i < policyDeployments; i++ {
			d.scaleTo(AppName(i), target)
		}
		if round < policyRounds-1 {
			d.Cluster.Loop.RunUntil(d.Cluster.Loop.Now() + policyRoundDelay)
		}
	}
}

// canaryPod builds the round's policy-violating pod: a compliant image but no
// resource limits, so it violates exactly one policy (limits-policy). It is
// structurally valid — the apiserver admits it whenever the admission chain
// does not intervene — and a single skipped hook is enough to let it through,
// which is what makes per-hook webhook faults expose the fail-open
// enforcement loss.
func canaryPod(round int) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: fmt.Sprintf("canary-%d", round), Namespace: spec.DefaultNamespace,
			Labels: map[string]string{spec.LabelApp: "canary"},
		},
		Spec: spec.PodSpec{
			Containers: []spec.Container{{
				Name: "canary", Image: "registry.local/canary:2.0",
				Command:          []string{"run"},
				RequestsMilliCPU: 50, RequestsMemMB: 32,
				Port: appTargetPort,
			}},
		},
	}
}

// awaitFailover waits until the tainted node is drained of application pods
// AND every deployment is back to full readiness (or the kbench bound
// expires) — the metric kbench reports for the failover scenario. The
// condition is evaluated on a watch-maintained pod/deployment view and the
// driver wakes on the exact event that completes the failover, instead of
// re-listing the namespace on a poll period.
func (d *Driver) awaitFailover(victim string) {
	if victim == "" {
		return
	}
	done := func(view *apiserver.Reflector) bool {
		drained := true
		view.ForEach(spec.KindPod, spec.DefaultNamespace, func(o spec.Object) bool {
			pod := o.(*spec.Pod)
			if pod.Active() && pod.Spec.NodeName == victim {
				drained = false
				return false
			}
			return true
		})
		if !drained {
			return false
		}
		for i := 0; i < failoverDeploys; i++ {
			obj, ok := view.Get(spec.KindDeployment, spec.DefaultNamespace, AppName(i))
			if !ok || obj.(*spec.Deployment).Status.ReadyReplicas < deployReplicas {
				return false
			}
		}
		return true
	}
	d.awaitCondition(done, spec.KindPod, spec.KindDeployment)
}

// awaitCondition drives the loop until cond holds over a watch-maintained
// view of the given kinds, or the kbench wait bound expires. The view's
// events (and its resync repairs) wake the driver; between events the loop
// runs freely, so the wait adds no polling traffic of its own.
func (d *Driver) awaitCondition(cond func(*apiserver.Reflector) bool, kinds ...spec.Kind) {
	loop := d.Cluster.Loop
	deadline := loop.Now() + requestTimeout
	var view *apiserver.Reflector
	view = apiserver.NewReflector(loop, d.User, readinessResync, func(apiserver.WatchEvent) {
		if cond(view) {
			loop.Stop()
		}
	}, kinds...)
	view.Start()
	defer view.Stop()
	for loop.Now() < deadline {
		if cond(view) {
			return
		}
		if !loop.RunUntilStopped(deadline) {
			// Deadline passed (or the queue drained / budget ran out): the
			// kbench bound expires like a real timeout.
			return
		}
	}
}

// TargetService returns the service the application client measures.
func (d *Driver) TargetService() (namespace, name string) {
	return spec.DefaultNamespace, AppName(0)
}

func (d *Driver) scaleTo(name string, replicas int64) {
	// kbench retries a conflicting update like a real client would.
	for attempt := 0; attempt < 3; attempt++ {
		obj, err := d.User.Get(spec.KindDeployment, spec.DefaultNamespace, name)
		if err != nil {
			return
		}
		deploy := spec.CloneForWriteAs(obj.(*spec.Deployment))
		deploy.Spec.Replicas = replicas
		err = d.User.Update(deploy)
		if err == nil || !errors.Is(err, apiserver.ErrConflict) {
			return
		}
		d.Cluster.Loop.RunUntil(d.Cluster.Loop.Now() + 100*time.Millisecond)
	}
}

// taintBusiestNode simulates a node failure through a NoExecute taint,
// "forcing the Pods running on the Node to be respawned onto available
// Nodes". It returns the tainted node's name.
func (d *Driver) taintBusiestNode() string {
	counts := make(map[string]int)
	for _, po := range d.User.List(spec.KindPod, spec.DefaultNamespace) {
		pod := po.(*spec.Pod)
		if pod.Active() && pod.Spec.NodeName != "" {
			counts[pod.Spec.NodeName]++
		}
	}
	var victim string
	best := -1
	for node, n := range counts {
		if n > best || (n == best && node < victim) {
			victim, best = node, n
		}
	}
	if victim == "" {
		return ""
	}
	// Conflicts with concurrent heartbeat writes are expected; retry like a
	// real kubectl invocation would.
	for attempt := 0; attempt < 5; attempt++ {
		obj, err := d.User.Get(spec.KindNode, "", victim)
		if err != nil {
			return victim
		}
		node := spec.CloneForWriteAs(obj.(*spec.Node))
		node.Spec.Taints = append(node.Spec.Taints, spec.Taint{
			Key: failoverTaintKey, Effect: spec.TaintNoExecute,
		})
		err = d.User.Update(node)
		if err == nil || !errors.Is(err, apiserver.ErrConflict) {
			return victim
		}
		d.Cluster.Loop.RunUntil(d.Cluster.Loop.Now() + 100*time.Millisecond)
	}
	return victim
}

// awaitReady waits until all deployments report the desired ready replicas
// or the kbench bound expires. Readiness is tracked on a watch-maintained
// deployment view — the driver wakes on the status update that completes the
// rollout rather than polling Get per deployment per period.
func (d *Driver) awaitReady(deployments int, replicas int64) {
	d.awaitCondition(func(view *apiserver.Reflector) bool {
		for i := 0; i < deployments; i++ {
			obj, ok := view.Get(spec.KindDeployment, spec.DefaultNamespace, AppName(i))
			if !ok || obj.(*spec.Deployment).Status.ReadyReplicas < replicas {
				return false
			}
		}
		return true
	}, spec.KindDeployment)
}
