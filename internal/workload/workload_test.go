package workload

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

func bootCluster(t *testing.T, seed int64) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Config{Seed: seed})
	c.Start()
	if !c.AwaitSettled(30 * time.Second) {
		t.Fatal("cluster did not settle")
	}
	return c
}

func readyReplicas(t *testing.T, c *cluster.Cluster, name string) int64 {
	t.Helper()
	obj, err := c.Client("test").Get(spec.KindDeployment, spec.DefaultNamespace, name)
	if err != nil {
		t.Fatalf("Get(%s): %v", name, err)
	}
	return obj.(*spec.Deployment).Status.ReadyReplicas
}

func TestDeployWorkload(t *testing.T) {
	c := bootCluster(t, 1)
	d := NewDriver(c, Deploy)
	d.Setup() // no-op for deploy
	d.Run()
	for i := 0; i < 3; i++ {
		if got := readyReplicas(t, c, AppName(i)); got != 2 {
			t.Fatalf("%s ready = %d, want 2", AppName(i), got)
		}
	}
	// Services must exist with allocated VIPs.
	obj, err := c.Client("test").Get(spec.KindService, spec.DefaultNamespace, AppName(0))
	if err != nil {
		t.Fatal(err)
	}
	if obj.(*spec.Service).Spec.ClusterIP == "" {
		t.Fatal("service has no cluster IP")
	}
}

func TestScaleUpWorkload(t *testing.T) {
	c := bootCluster(t, 2)
	d := NewDriver(c, ScaleUp)
	d.Setup()
	for i := 0; i < 2; i++ {
		if got := readyReplicas(t, c, AppName(i)); got != 2 {
			t.Fatalf("setup: %s ready = %d, want 2", AppName(i), got)
		}
	}
	d.Run()
	for i := 0; i < 2; i++ {
		if got := readyReplicas(t, c, AppName(i)); got != 5 {
			t.Fatalf("%s ready = %d, want 5 after 2→3→4→5", AppName(i), got)
		}
	}
}

func TestFailoverWorkload(t *testing.T) {
	c := bootCluster(t, 3)
	d := NewDriver(c, Failover)
	d.Setup()
	d.Run()
	// A node must carry the failover taint.
	tainted := ""
	for _, no := range c.Client("test").List(spec.KindNode, "") {
		for _, taint := range no.(*spec.Node).Spec.Taints {
			if taint.Key == failoverTaintKey {
				tainted = no.Meta().Name
			}
		}
	}
	if tainted == "" {
		t.Fatal("failover workload did not taint a node")
	}
	// All deployments recovered to full readiness off the tainted node.
	for i := 0; i < failoverDeploys; i++ {
		if got := readyReplicas(t, c, AppName(i)); got != 2 {
			t.Fatalf("%s ready = %d after failover, want 2", AppName(i), got)
		}
	}
	for _, po := range c.Client("test").List(spec.KindPod, spec.DefaultNamespace) {
		pod := po.(*spec.Pod)
		if pod.Active() && pod.Spec.NodeName == tainted {
			t.Fatalf("active pod %s still on tainted node", pod.Metadata.Name)
		}
	}
}

func TestClientMeasuresService(t *testing.T) {
	c := bootCluster(t, 4)
	d := NewDriver(c, ScaleUp)
	d.Setup()
	ns, svc := d.TargetService()
	client := NewClient(c, ns, svc)
	client.Start()
	c.Loop.RunUntil(c.Loop.Now() + ClientDuration + 2*time.Second)
	if !client.Done() {
		t.Fatal("client did not finish its series")
	}
	if len(client.Records) != TotalRequests {
		t.Fatalf("records = %d, want %d", len(client.Records), TotalRequests)
	}
	series := client.Series()
	ok := 0
	for _, v := range series {
		if v > 0 {
			ok++
		}
	}
	if ok < TotalRequests*9/10 {
		t.Fatalf("only %d/%d requests succeeded against a healthy service", ok, TotalRequests)
	}
	if n := client.TrailingFailures(); n != 0 {
		t.Fatalf("trailing failures = %d on a healthy service", n)
	}
}

func TestClientDetectsServiceDeath(t *testing.T) {
	c := bootCluster(t, 5)
	d := NewDriver(c, ScaleUp)
	d.Setup()
	ns, svc := d.TargetService()
	client := NewClient(c, ns, svc)
	client.Start()
	c.Loop.RunUntil(c.Loop.Now() + 10*time.Second)
	// Kill the service mid-run.
	if err := c.Client("test").Delete(spec.KindService, ns, svc); err != nil {
		t.Fatal(err)
	}
	c.Loop.RunUntil(c.Loop.Now() + ClientDuration)
	if client.TrailingFailures() < 100 {
		t.Fatalf("trailing failures = %d; service death not visible", client.TrailingFailures())
	}
	errs := client.ErrorCounts()
	if errs[netsim.ErrRefused] == 0 {
		t.Fatalf("error counts = %v, want refused errors", errs)
	}
}

func TestAppManifestShape(t *testing.T) {
	d := AppDeployment("webapp-0", 2)
	if d.Spec.Replicas != 2 {
		t.Fatal("replicas wrong")
	}
	if !d.Spec.Selector.Matches(d.Spec.Template.Labels) {
		t.Fatal("selector does not match template labels")
	}
	ctr := d.Spec.Template.Spec.Containers[0]
	if ctr.RequestsMilliCPU <= 0 || ctr.LimitsMilliCPU < ctr.RequestsMilliCPU {
		t.Fatal("paper requires requests and limits on the service app")
	}
	if d.Spec.Template.Spec.VolumeSeed == "" {
		t.Fatal("the web server must read a seed from a volume at startup")
	}
	svc := AppService("webapp-0")
	if svc.Spec.Selector["app"] != "webapp-0" {
		t.Fatal("service selector wrong")
	}
}
