// Package mutiny is a fault/error-injection framework for container
// orchestration systems, reproducing "Mutiny! How does Kubernetes fail, and
// what can we do about it?" (Barletta, Cinque, Di Martino, Kalbarczyk, Iyer —
// DSN 2024).
//
// The library bundles three things:
//
//   - a complete, deterministic simulation of a Kubernetes-shaped
//     orchestration system (data store, API server, controller manager,
//     scheduler, kubelets, virtual network) faithful to the resiliency
//     strategies the paper examines;
//   - Mutiny, the injector that tampers with the serialized state crossing
//     the apiserver↔store and component↔apiserver channels using the paper's
//     three fault models (bit flips, data-type sets, message drops) and
//     occurrence-index triggers;
//   - the experimental method around it: kbench-style workloads, an
//     application client, golden-run baselines, the two-level failure
//     classification (orchestrator- and client-level), campaign generation,
//     and the field failure data analysis of 81 real-world incidents.
//
// # Quick start
//
//	runner := mutiny.NewRunner()
//	runner.GoldenRuns = 20 // paper default is 100
//	res := runner.Run(mutiny.Spec{
//	    Workload: mutiny.WorkloadDeploy,
//	    Seed:     1,
//	    Injection: &mutiny.Injection{
//	        Channel:   mutiny.ChannelStore,
//	        Kind:      mutiny.KindReplicaSet,
//	        FieldPath: "spec.template.labels[app]",
//	        Type:      mutiny.SetValue,
//	        Value:     "mislabeled",
//	        Occurrence: 2,
//	    },
//	})
//	fmt.Println(res.OF, res.CF) // e.g. "Sta SU"
//
// Full campaigns (Tables III–V, Figures 6–7 of the paper) run through
// RunCampaign; see the examples directory and the benchmark harness in
// bench_test.go for the per-table reproduction entry points.
//
// # Performance model
//
// Campaign wall-clock is dominated by per-experiment simulation cost, which
// five mechanisms keep low:
//
//   - Copy-on-write objects. API reads (APIClient.Get/List, watch events)
//     return sealed, immutable references shared with the server's watch
//     cache — zero copies per read or per watch dispatch. Callers may read
//     and retain them freely; to modify one for an Update, obtain a private
//     copy via CloneForWrite first. The store applies the same discipline to
//     value bytes (stored arrays are immutable; snapshots and forks alias
//     them), and the codec interns hot decoded strings (names, namespaces,
//     label keys/values) process-wide through a 64-way sharded table whose
//     read path is lock-free (atomic map publication, copy-on-write
//     inserts). Sealing an object runs small label/selector maps through a
//     map-level intern table of the same shape, so the thousands of objects
//     carrying {"app": "web"} share one canonical map instance; clones
//     still deep-copy maps back out, keeping the mutable-clone contract.
//
//   - A watch-driven readiness pipeline. Components no longer poll: the
//     workload driver's readiness waits, the application client's VIP
//     resolution, the controllers' reconcile scans, and the scheduler's
//     world snapshots all read informer-style local views (apiserver
//     Reflector) maintained by the sealed watch fan-out, with a
//     low-frequency resync re-list as the safety net. The driver wakes on
//     the exact event that completes a rollout (sim.Loop.RunUntilStopped)
//     instead of a poll boundary, and per-sync server re-lists are gone.
//     The watch stream itself is the third injectable channel
//     (ChannelWatch): campaigns can drop or corrupt the notifications the
//     pipeline depends on, and the views degrade to bounded staleness
//     repaired at the next resync.
//
//   - A lean event path. The scheduler pools event structs and rearms
//     periodic timers in place (no allocation per tick), and stopped timers
//     are compacted out of the heap instead of lingering as tombstones.
//     Watch fan-out is batched at both hops (store→apiserver and
//     apiserver→watchers): each committed change schedules one loop event
//     that delivers the sealed object to every subscriber in registration
//     order — identical delivery order to per-watcher scheduling at a
//     fraction of the heap traffic. List reads are served from per-kind
//     key-sorted indexes, identity keys are cached at seal time, and
//     validation runs hand-rolled character-class matchers instead of
//     backtracking regexes.
//
//   - A revision-tagged decoded-object cache, elided in both directions.
//     The API server keeps the sealed decoded form of each store key tagged
//     with its mod revision, primed directly by untampered writes. Conflict
//     checks, watch ingest, and cache rebuilds (restarts, forks — snapshots
//     carry the cache) skip the backend-byte decode when the tag matches.
//     The same sealed objects also carry their canonical wire bytes, so a
//     status-only update — the hottest write class (kubelet heartbeats, pod
//     phase transitions, controller status syncs) — clones just the status
//     section (metadata and spec stay shared with the sealed source) and
//     splices a freshly encoded status record onto the cached metadata+spec
//     prefix, byte-identical to a full re-encode. Byte-level fault
//     semantics survive: tampered store writes are never cached, an armed
//     request channel suppresses both caches, and at-rest corruption
//     invalidates the entry through the store's rewrite hook, so corrupted
//     bytes are always decoded — and re-encoded — for real.
//
//   - Shared bootstrap snapshots (CampaignConfig.ShareBootstrap, CLI
//     -share-bootstrap, bench MUTINY_SHARE=1). Each experiment forks a
//     settled per-workload snapshot instead of replaying the ~20 s simulated
//     bootstrap. Snapshots are cached process-wide in a lock-free read-path
//     cache (atomic map publication), keyed on the cluster configuration
//     plus workload, so every Runner in the process bootstraps each
//     workload at most once. Reflector views established on a fork prime
//     from the restored store — the same re-list a restarted component
//     performs.
//
//   - Contention-free parallel execution (CampaignConfig.Parallelism, CLI
//     -parallel, bench MUTINY_PARALLEL). Experiments are isolated
//     simulations merged in generated order; outputs are bit-identical for
//     every worker count. Each worker owns everything its running
//     experiment touches — its classification buffer pool, per-worker
//     copy-on-read views of the shared bootstrap snapshots (no byte
//     aliasing between workers), and per-apiserver codec arenas for encode
//     buffers — so the steady-state campaign path crosses no shared locks.
//
//   - Multi-process sharding (CampaignConfig.Shards/ShardIndex, CLI
//     -shards/-shard-index). Campaign generation is deterministic, so each
//     shard process regenerates the full spec matrix and runs its
//     index-slice; only JSON-safe results cross the process boundary, and
//     the index-ordered merge (plus the post-merge refinement round) is
//     bit-identical to a single-process run. RunCampaign itself is the
//     one-shard case of the same pipeline.
//
// `make bench PR=N` measures all of it (ms/exp, allocs/exp, replay-vs-share
// ratio, parallel speedup) and emits BENCH_PRN.json — which also records
// GOMAXPROCS and the CPU — committed per PR; CI re-runs the gate on every
// push and warns — without failing — when ms/exp, allocs/exp, or the
// parallel speedup regresses >10% against the previous PR's committed
// artifact. Wall-clock warnings only fire when the recorded machine shape
// matches the baseline's; across an env change they degrade to notes, and
// the machine-stable allocs/exp comparison carries the gate. Set
// MUTINY_MUTEXPROF=1 on any bench run to capture mutex/block pprof
// artifacts for the parallel path.
package mutiny

import (
	"github.com/mutiny-sim/mutiny/internal/campaign"
	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Core experiment types.
type (
	// Runner executes experiments and caches golden baselines per workload.
	Runner = campaign.Runner
	// Spec describes one experiment: a workload and an optional injection.
	Spec = campaign.Spec
	// Result is a classified experiment outcome.
	Result = campaign.Result
	// Aggregate accumulates results into the paper's tables.
	Aggregate = campaign.Aggregate
	// CampaignConfig parameterizes a full campaign.
	CampaignConfig = campaign.Config
	// CampaignOutput bundles a campaign's aggregates.
	CampaignOutput = campaign.Output
	// PropagationCell is one Table VI cell (Inj/Prop/Err).
	PropagationCell = campaign.PropagationCell
	// ShardOutput is one shard's share of a campaign (JSON-serializable),
	// produced by RunCampaignShard and consumed by MergeCampaignShards.
	ShardOutput = campaign.ShardOutput

	// Injection is the (where, what, when) fault triple.
	Injection = inject.Injection
	// InjectionReport describes what an armed injection did.
	InjectionReport = inject.Report
	// Injector arms injections against an API server.
	Injector = inject.Injector
	// Recorder inventories the fields crossing the store channel.
	Recorder = inject.Recorder
	// RecordedField is one injectable field seen on the wire.
	RecordedField = inject.RecordedField

	// OF is an orchestrator-level failure category.
	OF = classify.OF
	// CF is a client-level failure category.
	CF = classify.CF
	// Observation is the raw measurement of one experiment window.
	Observation = classify.Observation
	// Baseline summarizes golden runs for classification.
	Baseline = classify.Baseline

	// Cluster is the simulated orchestration system.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes the cluster topology.
	ClusterConfig = cluster.Config

	// WorkloadKind names an orchestration workload.
	WorkloadKind = workload.Kind
	// ResourceKind names a resource type of the simulated system.
	ResourceKind = spec.Kind
	// Driver executes one workload against a cluster.
	Driver = workload.Driver
	// Client is the application client measuring a service.
	Client = workload.Client
)

// Injection channels (where).
const (
	// ChannelStore targets apiserver→store transactions (bypasses
	// validation: the paper's main campaign).
	ChannelStore = inject.ChannelStore
	// ChannelRequest targets component→apiserver requests (faces the
	// validation layer: the propagation experiments).
	ChannelRequest = inject.ChannelRequest
	// ChannelWatch targets the apiserver→component watch stream feeding the
	// informer-style readiness pipeline: dropped or corrupted notifications
	// mislead subscribers while the agreed cluster state stays clean.
	// Reflector-backed subscribers repair at their next resync re-list;
	// raw watchers without a re-list (data plane, kubelets) stay stale.
	ChannelWatch = inject.ChannelWatch
)

// Fault models (what).
const (
	// BitFlip flips one bit of a field value.
	BitFlip = inject.BitFlip
	// SetValue replaces a field with an extreme/invalid/wrong value.
	SetValue = inject.SetValue
	// DropMessage discards the message while reporting success.
	DropMessage = inject.DropMessage
	// FlipProtoByte corrupts a random serialization byte.
	FlipProtoByte = inject.FlipProtoByte
)

// Control-plane fault axes (HA clusters, ClusterConfig.ControlPlaneReplicas
// >= 2): time-triggered faults against the control plane itself rather than
// the state crossing its channels.
const (
	// FaultAPIServerCrash kills one apiserver replica; survivors keep
	// serving and its clients fail over. Heal restarts it.
	FaultAPIServerCrash = inject.FaultAPIServerCrash
	// FaultMasterPartition cuts one replica's master links: its apiserver
	// serves stale reads and fails writes until Heal reconnects it.
	FaultMasterPartition = inject.FaultMasterPartition
	// FaultStoreLoss drops one backing store replica; Heal restores it from
	// a surviving member's snapshot.
	FaultStoreLoss = inject.FaultStoreLoss
)

// Admission fault axes (ClusterConfig.AdmissionHooks >= 1): time-triggered
// faults against the admission webhook chain. Injection.Replica indexes the
// target hook; Injection.Policy ("Fail"/"Ignore") fixes the chain-wide
// failure policy for the experiment.
const (
	// FaultWebhookDown crashes one webhook backend; Heal restarts it.
	FaultWebhookDown = inject.FaultWebhookDown
	// FaultWebhookLatency slows one webhook past its call timeout.
	FaultWebhookLatency = inject.FaultWebhookLatency
	// FaultWebhookSelector misconfigures one hook's selector to match nothing.
	FaultWebhookSelector = inject.FaultWebhookSelector
	// FaultWebhookPolicy drops one hook's failurePolicy stanza (the platform
	// default, fail-open, silently applies) and takes its backend down.
	FaultWebhookPolicy = inject.FaultWebhookPolicy
)

// Topology fault axes (zoned cloud-edge clusters, ClusterConfig.Zones >= 2):
// time-triggered faults against the zoned network. Injection.Replica indexes
// the target zone; Injection.Value carries its name for the per-zone tables.
const (
	// FaultEdgeLinkFlap toggles one zone's uplink down and up on a short
	// period until Heal — the lossy last-mile link of an edge site.
	FaultEdgeLinkFlap = inject.FaultEdgeLinkFlap
	// FaultZonePartition severs one zone's uplink: cross-zone traffic times
	// out and the zone's kubelets lose the control plane until Heal.
	FaultZonePartition = inject.FaultZonePartition
	// FaultNodeKill crashes every node of one zone at once — the correlated
	// infrastructure failure. Heal brings them back.
	FaultNodeKill = inject.FaultNodeKill
)

// Workloads (§IV-B), plus the governance workload of the admission campaign.
const (
	WorkloadDeploy   = workload.Deploy
	WorkloadScaleUp  = workload.ScaleUp
	WorkloadFailover = workload.Failover
	// WorkloadPolicy mixes compliant churn with policy-violating canary
	// creates; it is the default workload of admission-fault campaigns and is
	// not part of Workloads().
	WorkloadPolicy = workload.Policy
)

// Resource kinds of the simulated system.
const (
	KindPod        = spec.KindPod
	KindReplicaSet = spec.KindReplicaSet
	KindDeployment = spec.KindDeployment
	KindDaemonSet  = spec.KindDaemonSet
	KindService    = spec.KindService
	KindEndpoints  = spec.KindEndpoints
	KindNode       = spec.KindNode
	KindNamespace  = spec.KindNamespace
	KindConfigMap  = spec.KindConfigMap
	KindLease      = spec.KindLease
)

// Orchestrator-level failure categories (Table I(c)).
const (
	OFNone = classify.OFNone
	OFTim  = classify.OFTim
	OFLeR  = classify.OFLeR
	OFMoR  = classify.OFMoR
	OFNet  = classify.OFNet
	OFSta  = classify.OFSta
	OFOut  = classify.OFOut
)

// Client-level failure categories (Table II).
const (
	CFNSI = classify.CFNSI
	CFHRT = classify.CFHRT
	CFIA  = classify.CFIA
	CFSU  = classify.CFSU
)

// NewRunner returns a Runner with paper-default settings (100 golden runs
// per workload).
func NewRunner() *Runner { return campaign.NewRunner() }

// NewAggregate returns an empty result aggregate, for folding hand-rolled
// experiment sets into the same tables RunCampaign produces.
func NewAggregate() *Aggregate { return campaign.NewAggregate() }

// RunCampaign executes the full experimental method of §IV-C: golden runs,
// field recording, campaign generation, injections, the critical-field
// refinement round, and the propagation experiments.
func RunCampaign(cfg CampaignConfig) *CampaignOutput { return campaign.RunCampaign(cfg) }

// RunCampaignShard executes one shard of a campaign: the experiments whose
// generated index i satisfies i % cfg.Shards == cfg.ShardIndex. Generation
// is deterministic, so cooperating processes running distinct shard indices
// of the same config jointly cover the full matrix exactly once; merge their
// outputs with MergeCampaignShards. The refinement round is deferred to the
// merge (it depends on the full main aggregate).
func RunCampaignShard(cfg CampaignConfig) *ShardOutput { return campaign.RunShard(cfg) }

// MergeCampaignShards reassembles shard outputs — local or decoded from
// JSON — into the full campaign Output, bit-identical to a single-process
// run, then executes the refinement round.
func MergeCampaignShards(cfg CampaignConfig, shards []*ShardOutput) *CampaignOutput {
	return campaign.MergeShardOutputs(cfg, shards)
}

// NewCluster builds a standalone simulated cluster (the substrate) for
// direct experimentation outside the campaign harness.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// NewDriver builds a workload driver for a cluster.
func NewDriver(c *Cluster, kind WorkloadKind) *Driver { return workload.NewDriver(c, kind) }

// NewInjector builds an injector bound to a cluster's loop; attach it to the
// cluster's API server with AttachTo.
func NewInjector(c *Cluster) *Injector { return inject.New(c.Loop) }

// Workloads lists the three workloads in paper order.
func Workloads() []WorkloadKind { return workload.Kinds() }
