package mutiny_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

// The public API must carry a complete experiment end to end without
// reaching into internal packages.
func TestPublicAPIExperiment(t *testing.T) {
	runner := mutiny.NewRunner()
	runner.GoldenRuns = 10
	res := runner.Run(mutiny.Spec{
		Workload: mutiny.WorkloadScaleUp,
		Seed:     1,
		Injection: &mutiny.Injection{
			Channel:    mutiny.ChannelStore,
			Kind:       mutiny.KindDeployment,
			FieldPath:  "spec.replicas",
			Type:       mutiny.SetValue,
			Value:      int64(0),
			Occurrence: 2,
		},
	})
	if !res.Report.Fired {
		t.Fatal("injection did not fire")
	}
	if res.OF == mutiny.OFNone {
		t.Fatalf("OF = %s; zeroing replicas must be visible", res.OF)
	}
}

func TestPublicAPICluster(t *testing.T) {
	cl := mutiny.NewCluster(mutiny.ClusterConfig{Seed: 9})
	cl.Start()
	if !cl.AwaitSettled(30 * time.Second) {
		t.Fatal("cluster did not settle")
	}
	driver := mutiny.NewDriver(cl, mutiny.WorkloadDeploy)
	driver.Setup()
	driver.Run()
	ns, name := driver.TargetService()
	obj, err := cl.Client("user").Get(mutiny.KindService, ns, name)
	if err != nil {
		t.Fatal(err)
	}
	svc, ok := obj.(*mutiny.Service)
	if !ok || svc.Spec.ClusterIP == "" {
		t.Fatalf("service not usable through public types: %T", obj)
	}
	if res := cl.Net.Request(cl.MonitoringNode(), svc.Spec.ClusterIP, 80); res.Failed() {
		t.Fatalf("request failed: %s", res.Err)
	}
	cl.Stop()
}

func TestPublicAPICampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke test is slow")
	}
	out := mutiny.RunCampaign(mutiny.CampaignConfig{
		Workloads:       []mutiny.WorkloadKind{mutiny.WorkloadDeploy},
		GoldenRuns:      10,
		SampleStride:    100,
		SkipRefinement:  true,
		SkipPropagation: true,
	})
	if out.Main.Total() == 0 {
		t.Fatal("campaign ran no experiments")
	}
	var buf bytes.Buffer
	mutiny.RenderTable4(&buf, out.Main)
	mutiny.RenderTable5(&buf, out.Main)
	mutiny.RenderFigure6(&buf, out.Main)
	mutiny.RenderFigure7(&buf, out.Main)
	mutiny.RenderFindings(&buf, out.Main)
	for _, want := range []string{"Table IV", "Table V", "Figure 6", "Figure 7", "F1:", "F2:", "F4:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
}

func TestRenderStaticTables(t *testing.T) {
	var buf bytes.Buffer
	mutiny.RenderTable1(&buf)
	if !strings.Contains(buf.String(), "81 real-world") {
		t.Fatal("Table I missing dataset header")
	}
	buf.Reset()
	mutiny.RenderTable7(&buf)
	out := buf.String()
	if !strings.Contains(out, "paper: 54/81") {
		t.Fatal("Table VII missing the incident coverage summary")
	}
	if !strings.Contains(out, "*Wrong label") {
		t.Fatal("Table VII missing replicable markers")
	}
}

func TestWorkloadsList(t *testing.T) {
	wls := mutiny.Workloads()
	if len(wls) != 3 || wls[0] != mutiny.WorkloadDeploy || wls[2] != mutiny.WorkloadFailover {
		t.Fatalf("Workloads() = %v", wls)
	}
}
