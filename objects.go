package mutiny

import (
	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/guard"
	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Resource model re-exports: the object types a user needs to read and write
// cluster state through an APIClient.
type (
	// Object is implemented by every resource type.
	Object = spec.Object
	// ObjectMeta carries identity and relationship metadata.
	ObjectMeta = spec.ObjectMeta
	// OwnerReference links a dependent object to its owner.
	OwnerReference = spec.OwnerReference
	// LabelSelector selects objects by labels.
	LabelSelector = spec.LabelSelector
	// PodTemplate is the pod blueprint in workload resources.
	PodTemplate = spec.PodTemplate

	// Pod is a set of containers scheduled onto one node.
	Pod = spec.Pod
	// ReplicaSet maintains a stable set of pod replicas.
	ReplicaSet = spec.ReplicaSet
	// Deployment manages ReplicaSets and rolling updates.
	Deployment = spec.Deployment
	// DaemonSet runs one pod per matching node.
	DaemonSet = spec.DaemonSet
	// Service exposes pods behind a virtual IP.
	Service = spec.Service
	// Endpoints lists a Service's ready backends.
	Endpoints = spec.Endpoints
	// Node is a cluster member.
	Node = spec.Node
	// Namespace partitions resources.
	Namespace = spec.Namespace
	// ConfigMap holds configuration data.
	ConfigMap = spec.ConfigMap
	// Lease implements leader election and heartbeats.
	Lease = spec.Lease

	// APIClient is a component-scoped handle on the API server.
	APIClient = apiserver.Client
	// ServerOptions tunes the API server (validation ablation, the §VI-B
	// critical-field checksum mitigation, ...).
	ServerOptions = apiserver.Options
	// FieldGuard is the §VI-B log+monitor+rollback mitigation.
	FieldGuard = guard.Guard
	// GuardChange is one journaled critical-field change.
	GuardChange = guard.Change
	// NetworkState is the simulated data plane (service VIPs, routes, DNS).
	NetworkState = netsim.State
	// RequestResult is the outcome of one client request.
	RequestResult = netsim.RequestResult
)

// CriticalFieldPath reports whether a field path belongs to the §V-C2
// critical set (dependency, identity, and networking fields).
func CriticalFieldPath(path string) bool { return spec.CriticalFieldPath(path) }

// CloneForWrite is the mutation gate of the copy-on-write object contract:
// APIClient reads (Get, List, watch events) return sealed, immutable
// references shared with the server's watch cache; pass one through
// CloneForWrite to obtain a private copy before modifying it for an Update.
// Objects the caller built itself pass through unchanged.
func CloneForWrite(o Object) Object { return spec.CloneForWrite(o) }

// Well-known names of the system plane.
const (
	// SystemNamespace hosts control-plane and networking workloads.
	SystemNamespace = spec.SystemNamespace
	// DefaultNamespace hosts application workloads.
	DefaultNamespace = spec.DefaultNamespace
	// NetConfigMapName is the network manager's ConfigMap (flannel-cfg).
	NetConfigMapName = netsim.NetConfigMapName
	// NetConfigKey is the overlay configuration key inside it.
	NetConfigKey = netsim.NetConfigKey
	// NetConfigValue is the correct overlay configuration value.
	NetConfigValue = netsim.NetConfigValue
)
