package mutiny

import (
	"io"

	"github.com/mutiny-sim/mutiny/internal/campaign"
	"github.com/mutiny-sim/mutiny/internal/report"
)

// Report rendering: plain-text equivalents of the paper's tables and
// figures, exposed so downstream users of the library can regenerate them
// from their own campaign aggregates.

// RenderTable1 writes the Table I fault→error→failure chain with the FFDA
// dataset's counts.
func RenderTable1(w io.Writer) { report.Table1(w) }

// RenderTable3 writes the OF→CF propagation matrix (Table III).
func RenderTable3(w io.Writer, agg *Aggregate) { report.Table3(w, agg) }

// RenderTable4 writes the orchestrator-level failure statistics (Table IV).
func RenderTable4(w io.Writer, agg *Aggregate) { report.Table4(w, agg) }

// RenderTable5 writes the client-level failure statistics (Table V).
func RenderTable5(w io.Writer, agg *Aggregate) { report.Table5(w, agg) }

// RenderTable6 writes the propagation experiment outcomes (Table VI).
func RenderTable6(w io.Writer, cells []PropagationCell) { report.Table6(w, cells) }

// RenderTable7 writes the real-world vs Mutiny coverage comparison
// (Table VII).
func RenderTable7(w io.Writer) { report.Table7(w) }

// RenderHATable writes the HA control-plane fault-axis statistics: failover
// and stale-read window distributions per fault axis. Prints a placeholder
// line when the campaign ran without control-plane replication.
func RenderHATable(w io.Writer, agg *Aggregate) { report.HATable(w, agg) }

// RenderAdmissionTable writes the admission fault-axis trade-off: per webhook
// fault under each failure-policy regime, the write-availability outage
// window (med+p95) against the count of policy-violating objects admitted.
// Prints a placeholder line when the campaign ran without admission hooks.
func RenderAdmissionTable(w io.Writer, agg *Aggregate) { report.AdmissionTable(w, agg) }

// RenderTopologyTable writes the cloud-edge topology fault-axis statistics:
// disruption and recovery window distributions per fault axis and zone.
// Prints a placeholder line when the campaign ran on a flat network.
func RenderTopologyTable(w io.Writer, agg *Aggregate) { report.TopologyTable(w, agg) }

// RenderFigure5 writes a golden vs injected latency time-series comparison
// (Figure 5).
func RenderFigure5(w io.Writer, golden, injected []float64, goldenZ, injectedZ float64) {
	report.Figure5(w, golden, injected, goldenZ, injectedZ)
}

// RenderFigure6 writes the per-OF client z-score summaries (Figure 6).
func RenderFigure6(w io.Writer, agg *Aggregate) { report.Figure6(w, agg) }

// RenderFigure7 writes the user-visible-error analysis (Figure 7).
func RenderFigure7(w io.Writer, agg *Aggregate) { report.Figure7(w, agg) }

// RenderCriticalFields writes the §V-C2 critical-field analysis (finding F2).
func RenderCriticalFields(w io.Writer, agg *Aggregate) { report.CriticalFields(w, agg) }

// RenderFindings writes the headline findings (F1, F2, F4) computed from an
// aggregate.
func RenderFindings(w io.Writer, agg *Aggregate) { report.Findings(w, agg) }

var _ = campaign.NewAggregate // anchor the alias targets
