package mutiny_test

import (
	"runtime"
	"testing"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

// Budgets for the 500-node bootstrap, generously above the measured cost
// (≈40ms / ≈6MB on the reference machine) but far below what an
// O(nodes²)-per-cycle regression in the scheduler or endpoints controller
// would cost. `make bench PR=10` tracks the precise per-experiment number;
// this guard only keeps `make check` from silently absorbing a blow-up.
const (
	scale500WallBudget  = 10 * time.Second
	scale500AllocBudget = 1 << 30 // bytes
)

// The scale smoke `make check` runs: a 500-node three-zone cloud-edge
// cluster bootstraps and settles inside the recorded budget, completes a
// workload, rides out an edge-zone partition while core clients keep being
// served, and re-converges once the uplink heals.
func TestScale500Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("500-node smoke campaign is slow")
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()

	cl := mutiny.NewCluster(mutiny.ClusterConfig{Seed: 10, Workers: 500, Zones: 3})
	cl.Start()
	if !cl.AwaitSettled(120 * time.Second) {
		t.Fatal("500-node cluster did not settle within 120s of simulated time")
	}

	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	allocs := m1.TotalAlloc - m0.TotalAlloc
	t.Logf("bootstrap+settle: wall=%v allocs=%dMB", wall, allocs>>20)
	if wall > scale500WallBudget {
		t.Errorf("bootstrap wall-clock %v exceeds the %v budget", wall, scale500WallBudget)
	}
	if allocs > scale500AllocBudget {
		t.Errorf("bootstrap allocated %dMB, budget %dMB", allocs>>20, scale500AllocBudget>>20)
	}

	if got := cl.Zones(); got != 3 {
		t.Fatalf("Zones() = %d, want 3", got)
	}
	if nodes := cl.Client("smoke").List(mutiny.KindNode, ""); len(nodes) != 501 {
		t.Fatalf("%d nodes, want 501 (500 workers + control plane)", len(nodes))
	}
	edge := cl.ZoneName(2)
	if len(cl.ZoneNodes(edge)) == 0 || len(cl.ZoneNodes(cl.ZoneName(0))) == 0 {
		t.Fatalf("zones not populated: core=%d edge=%d",
			len(cl.ZoneNodes(cl.ZoneName(0))), len(cl.ZoneNodes(edge)))
	}

	// The workload completes at scale.
	driver := mutiny.NewDriver(cl, mutiny.WorkloadDeploy)
	driver.Setup()
	driver.Run()
	ns, name := driver.TargetService()
	obj, err := cl.Client("smoke").Get(mutiny.KindService, ns, name)
	if err != nil {
		t.Fatal(err)
	}
	vip := obj.(*mutiny.Service).Spec.ClusterIP

	serves := func(stage string) {
		t.Helper()
		for i := 0; i < 10; i++ {
			if res := cl.Net.Request(cl.MonitoringNode(), vip, 80); !res.Failed() {
				return
			}
		}
		t.Fatalf("%s: 10 consecutive request failures from the monitoring node", stage)
	}
	serves("after workload")

	// Ride out an edge-zone partition: the cluster degrades but core
	// clients stay served, and the heal re-converges the topology.
	cl.PartitionZone(edge)
	cl.Loop.RunUntil(cl.Loop.Now() + 10*time.Second)
	if !cl.TopologyDegraded() {
		t.Fatal("edge partition not visible as topology degradation")
	}
	serves("during edge partition")

	cl.HealZone(edge)
	deadline := cl.Loop.Now() + 60*time.Second
	for cl.Loop.Now() < deadline && !cl.TopologyConverged() {
		cl.Loop.RunUntil(cl.Loop.Now() + time.Second)
	}
	if !cl.TopologyConverged() {
		t.Fatal("topology did not re-converge within 60s of the heal")
	}
	serves("after heal")
	cl.Stop()
}
