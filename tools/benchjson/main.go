// Command benchjson turns `go test -bench` output into a machine-readable
// JSON artifact. `make bench PR=N` pipes the perf-gate benchmarks through it
// to produce BENCH_PRN.json, which is committed per PR and uploaded by CI on
// every push, so the benchmark trajectory of the hot experiment path is
// recorded per commit (ms/exp, allocs/exp, the replay-vs-share ratio, and
// the parallel-campaign workers-vs-sequential speedup).
//
// Usage:
//
//	go test -run xxx -bench ... -benchmem . | go run ./tools/benchjson -out BENCH_PR4.json [-prev BENCH_PR3.json]
//
// Each artifact also records the benchmark environment (GOMAXPROCS from the
// bench lines' -P suffix, the CPU count, and the `cpu:` model line), so a
// speedup measured on a 1-vCPU runner is not mistaken for a scaling
// regression against a 16-core one.
//
// With -prev, the derived per-experiment latencies are compared against the
// previous PR's committed artifact: a >10% ms/exp regression (tunable with
// -warn-threshold) emits a non-blocking warning — on stderr and as a GitHub
// Actions "::warning::" annotation — and is recorded in the artifact's
// "regressions" field. campaign_parallel_speedup is compared in the
// higher-is-better direction: a >10% drop in parallel scaling warns the
// same way. The exit status stays zero: machine variance between
// runners makes a hard gate too noisy, but the warning makes the drift
// visible on every push.
//
// Unknown lines are ignored, so the full interleaved test output (campaign
// progress, table renders) can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MsPerOp     float64            `json:"ms_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"` // custom b.ReportMetric units
}

// Env records the machine the benchmarks ran on, so artifacts from
// different runners are comparable at a glance. GOMAXPROCS comes from the
// -P suffix of the parsed benchmark lines (the test binary's setting, not
// this process's); CPU comes from the `cpu:` header go test prints.
type Env struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPU        string `json:"cpu,omitempty"`
}

// Report is the emitted artifact.
type Report struct {
	Env        Env                `json:"env"`
	Benchmarks map[string]Bench   `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
	// Baseline echoes the previous artifact's derived metrics (when -prev
	// is given) and Regressions lists human-readable >threshold ms/exp
	// drifts against it. Both are informational — the perf gate warns, it
	// does not block.
	Baseline    map[string]float64 `json:"baseline,omitempty"`
	Regressions []string           `json:"regressions,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	prev := flag.String("prev", "", "previous PR's committed artifact to compare against")
	warnThreshold := flag.Float64("warn-threshold", 0.10, "fractional ms/exp regression that triggers a warning")
	flag.Parse()

	report := Report{Benchmarks: map[string]Bench{}, Derived: map[string]float64{}}
	report.Env.NumCPU = runtime.NumCPU()
	report.Env.GOMAXPROCS = runtime.GOMAXPROCS(0) // fallback; bench -P suffix overrides
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	// Benchmarks that print to stdout mid-iteration split their result line:
	// the name appears alone (followed by the stray print), and the numbers
	// arrive on a later line. Track the pending name so such results are
	// still attributed.
	pending := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the console log stays readable
		fields := strings.Fields(line)
		if name, b, ok := parseBenchLine(line); ok {
			report.Benchmarks[name] = b
			if p := procsOf(fields[0]); p > 0 {
				report.Env.GOMAXPROCS = p
			}
			pending = ""
			continue
		}
		if len(fields) >= 2 && fields[0] == "cpu:" {
			report.Env.CPU = strings.Join(fields[1:], " ")
			continue
		}
		if len(fields) > 0 && strings.HasPrefix(fields[0], "Benchmark") {
			if p := procsOf(fields[0]); p > 0 {
				report.Env.GOMAXPROCS = p
			}
			pending = trimProcSuffix(fields[0])
			continue
		}
		if pending != "" {
			if b, ok := parseResultFields(fields); ok {
				report.Benchmarks[pending] = b
				pending = ""
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		// An empty artifact means the benchmarks never ran (build failure,
		// panic, wrong -bench filter); fail loudly rather than record a
		// hollow gate result.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}
	derive(&report)
	if *prev != "" {
		// The ::warning annotation goes to stdout only when the JSON goes to
		// a file — with -out unset, stdout IS the artifact and must stay
		// pure JSON.
		compareBaseline(&report, *prev, *warnThreshold, *out != "")
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// trimProcSuffix strips the trailing -GOMAXPROCS suffix from a benchmark
// name, keeping sub-benchmark paths.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// procsOf extracts the trailing -GOMAXPROCS suffix, or 0 when absent.
func procsOf(name string) int {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			return p
		}
	}
	return 0
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...`
// line; it returns ok=false for everything else.
func parseBenchLine(line string) (string, Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Bench{}, false
	}
	b, ok := parseResultFields(fields[1:])
	if !ok {
		return "", Bench{}, false
	}
	return trimProcSuffix(fields[0]), b, true
}

// parseResultFields parses `N  v1 unit1  v2 unit2 ...` (a result line minus
// the benchmark name).
func parseResultFields(fields []string) (Bench, bool) {
	if len(fields) < 3 {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Iterations: iters}
	seen := false
	for i := 1; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			b.MsPerOp = val / 1e6
			seen = true
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = val
		}
	}
	return b, seen
}

// compareBaseline loads the previous artifact and warns — without failing —
// when a headline per-experiment latency regressed by more than threshold.
func compareBaseline(r *Report, path string, threshold float64, annotate bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		// A missing baseline is normal on the first PR that adopts the
		// comparison; note it and move on.
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s unreadable (%v); skipping comparison\n", path, err)
		return
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v; skipping comparison\n", path, err)
		return
	}
	r.Baseline = base.Derived
	warn := func(msg string) {
		r.Regressions = append(r.Regressions, msg)
		fmt.Fprintln(os.Stderr, "benchjson: WARNING:", msg)
		if annotate {
			// GitHub Actions annotation; inert noise anywhere else.
			fmt.Printf("::warning title=perf regression::%s\n", msg)
		}
	}
	// Wall-clock metrics only compare like with like: a baseline captured on
	// a different machine shape (CPU count, GOMAXPROCS, model string) says
	// nothing about a latency delta, so time-based findings degrade to a
	// stderr note instead of a recorded regression. Allocation counts are
	// machine-stable and stay hard warnings either way.
	timeWarn := warn
	if base.Env != r.Env {
		timeWarn = func(msg string) {
			fmt.Fprintf(os.Stderr, "benchjson: note (env changed %+v -> %+v, not flagged): %s\n",
				base.Env, r.Env, msg)
		}
	}
	for _, metric := range []string{"experiment_ms_share", "experiment_ms_replay", "scale_500_ms_per_exp"} {
		was, okWas := base.Derived[metric]
		now, okNow := r.Derived[metric]
		if !okWas || !okNow || was <= 0 {
			continue
		}
		if now > was*(1+threshold) {
			timeWarn(fmt.Sprintf("%s regressed %.1f%% vs %s (%.2f -> %.2f ms/exp)",
				metric, (now/was-1)*100, path, was, now))
		}
	}
	for _, metric := range []string{"experiment_allocs_share", "experiment_allocs_replay", "scale_500_allocs_per_exp"} {
		was, okWas := base.Derived[metric]
		now, okNow := r.Derived[metric]
		if !okWas || !okNow || was <= 0 {
			continue
		}
		if now > was*(1+threshold) {
			warn(fmt.Sprintf("%s regressed %.1f%% vs %s (%.0f -> %.0f allocs/exp)",
				metric, (now/was-1)*100, path, was, now))
		}
	}
	// campaign_parallel_speedup is higher-is-better: warn when the measured
	// parallel scaling DROPPED by more than the threshold vs the baseline.
	if was, ok := base.Derived["campaign_parallel_speedup"]; ok && was > 0 {
		if now, ok := r.Derived["campaign_parallel_speedup"]; ok && now < was*(1-threshold) {
			timeWarn(fmt.Sprintf("campaign_parallel_speedup regressed %.1f%% vs %s (×%.2f -> ×%.2f)",
				(1-now/was)*100, path, was, now))
		}
	}
}

// derive computes the headline metrics the perf gate tracks across PRs.
func derive(r *Report) {
	replay, hasReplay := r.Benchmarks["BenchmarkExperimentThroughput/replay"]
	share, hasShare := r.Benchmarks["BenchmarkExperimentThroughput/share"]
	if hasReplay {
		r.Derived["experiment_ms_replay"] = replay.MsPerOp
		r.Derived["experiment_allocs_replay"] = replay.AllocsPerOp
	}
	if hasShare {
		r.Derived["experiment_ms_share"] = share.MsPerOp
		r.Derived["experiment_allocs_share"] = share.AllocsPerOp
	}
	if hasReplay && hasShare && share.NsPerOp > 0 {
		r.Derived["replay_vs_share_ratio"] = replay.NsPerOp / share.NsPerOp
	}
	// The scale tier: per-experiment cost on the 500-node three-zone cluster,
	// and its ratio over the identical 10-node experiment — the sub-linearity
	// number (50× the nodes for a small multiple of the cost).
	s500, has500 := r.Benchmarks["BenchmarkScale500"]
	if has500 {
		r.Derived["scale_500_ms_per_exp"] = s500.MsPerOp
		r.Derived["scale_500_allocs_per_exp"] = s500.AllocsPerOp
	}
	if s10, ok := r.Benchmarks["BenchmarkScale10"]; ok && has500 && s10.NsPerOp > 0 {
		r.Derived["scale_500_vs_10_ratio"] = s500.NsPerOp / s10.NsPerOp
	}
	if bs, ok := r.Benchmarks["BenchmarkBootstrapShare"]; ok {
		if v, ok := bs.Extra["replay/fork-×"]; ok {
			r.Derived["bootstrap_replay_vs_fork_ratio"] = v
		}
	}
	// The speedup is sequential over the FASTEST parallel entry: the bench
	// may emit several workers=N sub-benchmarks (a pinned workers=4 plus the
	// all-cores case) and the headline metric is the best achieved scaling.
	var seq, par float64
	for name, b := range r.Benchmarks {
		switch {
		case name == "BenchmarkCampaignParallel/sequential":
			seq = b.NsPerOp
		case strings.HasPrefix(name, "BenchmarkCampaignParallel/workers="):
			if par == 0 || b.NsPerOp < par {
				par = b.NsPerOp
			}
		}
	}
	if seq > 0 && par > 0 {
		r.Derived["campaign_parallel_speedup"] = seq / par
	}
}
